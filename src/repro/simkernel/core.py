"""Discrete-event simulation core.

A small, dependency-free kernel in the style of SimPy: a :class:`Simulator`
owns a binary-heap event calendar and advances virtual time; model behaviour
is written as Python generator functions ("processes") that ``yield`` events
(timeouts, resource requests, other processes, conditions) and are resumed
when those events fire.

Time is a float in **seconds**; sub-microsecond resolution is fine because
events at equal times are ordered deterministically by (priority, sequence
number), so runs are exactly reproducible for a given seed.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for events that must fire before same-time NORMAL ones
#: (used internally for process resumption after interrupts).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the calendar, value decided
_PROCESSED = 2  # callbacks ran


class SimulationError(Exception):
    """Raised for kernel-level misuse (e.g. yielding a non-event)."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* when given a value (and is
    scheduled), and *processed* once its callbacks have run.  Processes that
    yield the event are resumed with its value (or have its exception thrown
    into them if the event failed).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        # hot path: schedule at the current time without an _enqueue frame
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, priority, seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, priority, seq, self))
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so the kernel will not re-raise it."""
        self._defused = True
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            # Nobody waited for (or defused) a failed event: surface the error.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self._state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # the single most-constructed event type: initialize flat (no
        # Event.__init__ call) and schedule without an _enqueue frame
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now + delay, NORMAL, seq, self))


class Process(Event):
    """Drives a generator, resuming it each time a yielded event fires.

    A process is itself an event: it succeeds with the generator's return
    value, or fails with any exception that escapes the generator.
    """

    __slots__ = ("_generator", "_target", "name", "_cb")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        #: the bound resume callback, allocated once instead of on every
        #: suspension (callbacks.append(self._resume) re-binds each time)
        self._cb = self._resume
        if sim._process_watchers:
            for fn in sim._process_watchers:
                fn(self, "start")
        # Bootstrap: resume the generator at time now.
        init = Event(sim)
        init._ok = True
        init._state = _TRIGGERED
        init.callbacks.append(self._cb)
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, URGENT, seq, init))

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != _PENDING:
            return  # already finished; interrupt is a no-op
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True
        ev._state = _TRIGGERED
        ev.callbacks.append(self._cb)
        # Detach from whatever we were waiting on so that event no longer
        # resumes us when it fires.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._cb)
            except ValueError:
                pass
        self._target = None
        self.sim._enqueue(0.0, URGENT, ev)

    def _resume(self, event: Event) -> None:
        # the kernel's innermost loop: one call per process suspension;
        # locals bound up front keep the common send-and-suspend cycle
        # free of repeated attribute loads
        sim = self.sim
        sim._active_process = self
        gen = self._generator
        send = gen.send
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event._defused = True
                    target = gen.throw(event._value)
            except StopIteration as exc:
                sim._active_process = None
                self._target = None
                if self._state == _PENDING:
                    self.succeed(exc.value, priority=URGENT)
                    if sim._process_watchers:
                        for fn in sim._process_watchers:
                            fn(self, "end")
                return
            except BaseException as exc:
                sim._active_process = None
                self._target = None
                if self._state == _PENDING:
                    self.fail(exc, priority=URGENT)
                    if sim._process_watchers:
                        for fn in sim._process_watchers:
                            fn(self, "end")
                    return
                raise

            if isinstance(target, Event):
                if target.sim is not sim:
                    raise SimulationError(
                        "yielded event belongs to another simulator"
                    )
                if target._state != _PROCESSED:
                    target.callbacks.append(self._cb)
                    self._target = target
                    sim._active_process = None
                    return
                # Already over: feed its value straight back in.
                event = target
                continue

            err: BaseException = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            sim._active_process = None
            self._target = None
            try:
                gen.throw(err)
            except StopIteration:
                pass
            except BaseException as exc:
                err = exc
            else:
                # The generator caught the error and yielded again; it
                # cannot be resumed after an invalid yield, so shut it
                # down instead of leaving the process pending forever.
                gen.close()
            if self._state == _PENDING:
                self.fail(err, priority=URGENT)
                if sim._process_watchers:
                    for fn in sim._process_watchers:
                        fn(self, "end")
            return


class Condition(Event):
    """Waits for a boolean combination of events.

    Succeeds with a dict mapping each *fired* constituent event to its value.
    Fails as soon as any constituent fails.
    """

    __slots__ = ("_events", "_need", "_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event], need: int):
        super().__init__(sim)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._need = min(need, len(self._events)) if self._events else 0
        self._fired: list = []
        if self._need == 0:
            self.succeed({})
            return
        for ev in self._events:
            if ev._state == _PROCESSED:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        if len(self._fired) >= self._need:
            self.succeed({ev: ev._value for ev in self._fired})


class AnyOf(Condition):
    """Condition that fires when *any* constituent event fires."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, need=1)


class AllOf(Condition):
    """Condition that fires when *all* constituent events have fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = list(events)
        super().__init__(sim, events, need=len(events))


class Simulator:
    """Owns the event calendar and the simulated clock."""

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []  # (time, priority, seq, event)
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: observers of the process lifecycle (see add_process_watcher);
        #: empty by default so the hot resume path pays one falsy check
        self._process_watchers: list = []
        #: calendar events processed so far (the model layer's cost metric:
        #: fewer events for the same simulated outcome = a faster run)
        self.events_processed: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def add_process_watcher(
        self, fn: Callable[[Process, str], None]
    ) -> None:
        """Observe the process lifecycle: ``fn(process, event)`` is called
        with ``"start"`` when a process is registered and ``"end"`` when its
        generator finishes (normally or with an error).

        Watchers must be passive — they run inside the kernel and must not
        schedule or trigger events.  The trace facility uses this to close
        dangling spans when an instrumented process dies mid-span.
        """
        self._process_watchers.append(fn)

    # -- event construction --------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event, triggered manually via succeed()/fail()."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Event:
        """An event firing at *absolute* time ``when`` (>= now).

        Unlike ``timeout(when - now)``, the target time is used exactly as
        given — no ``now + delay`` float round trip — so a caller collapsing
        a chain of relative timeouts can land on the bit-identical instants
        the chain would have produced.
        """
        if when < self._now:
            raise ValueError("cannot schedule in the past")
        ev = Event(self)
        ev._value = value
        ev._state = _TRIGGERED
        self._seq = seq = self._seq + 1
        heappush(self._queue, (when, NORMAL, seq, ev))
        return ev

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a running process."""
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` (a plain callable, not a process) at absolute time."""
        if when < self._now:
            raise ValueError("cannot schedule in the past")
        ev = Event(self)
        ev._ok = True
        ev._state = _TRIGGERED
        ev.callbacks.append(lambda _e: fn())
        self._enqueue(when - self._now, NORMAL, ev)
        return ev

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, delay: float, priority: int, event: Event) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run a plain callable after ``delay`` seconds."""
        self.call_at(self._now + delay, fn)

    # -- execution -------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.  Raises IndexError when empty."""
        when, _prio, _seq, event = heappop(self._queue)
        self._now = when
        self.events_processed += 1
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the calendar empties, ``until`` seconds pass, or an
        ``until`` event fires (its value is returned)."""
        stop_value: list = []
        if isinstance(until, Event):
            if until._state == _PROCESSED:
                return until._value

            def _stop(ev: Event) -> None:
                stop_value.append(ev._value)
                if not ev._ok:
                    ev._defused = True
                raise StopSimulation()

            until.callbacks.append(_stop)
            horizon = float("inf")
        elif until is None:
            horizon = float("inf")
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError("cannot run into the past")

        # The event loop proper.  This is `step()` inlined — pop, advance
        # the clock, run callbacks — with the heap and horizon bound to
        # locals: two fewer Python frames and ~6 fewer attribute loads per
        # event, which is the bulk of the kernel's per-event cost.
        queue = self._queue
        pop = heappop
        count = 0
        try:
            while queue and queue[0][0] <= horizon:
                when, _prio, _seq, event = pop(queue)
                self._now = when
                count += 1
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    # Nobody waited for (or defused) this failed event:
                    # surface the error (see Event._run_callbacks).
                    raise event._value
        except StopSimulation:
            val = stop_value[0]
            if isinstance(until, Event) and not until._ok:
                raise val
            return val
        finally:
            # flushed once per run() call, not per event, to keep the
            # loop free of per-event attribute stores
            self.events_processed += count
        if horizon != float("inf"):
            self._now = horizon
        if isinstance(until, Event):
            raise SimulationError("simulation ended before 'until' event fired")
        return None
