"""Demand-fluctuation traces.

Paper §2.3: "Significant fluctuations in the demand for system processor
resources and access to data occur during real-time workload execution" —
and these "real-time spikes and troughs" are precisely what breaks
capacity planning for data-partitioned systems.  A trace gives each
system's *offered* arrival-rate multiplier over time; EXP-BAL drives both
architectures with the same trace.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["DemandTrace", "flat_trace", "spike_trace", "rotating_hotspot_trace"]


class DemandTrace:
    """Per-stream arrival-rate multipliers as piecewise-constant steps."""

    def __init__(self, n_streams: int, step: float,
                 multipliers: Sequence[Sequence[float]]):
        """``multipliers[k][i]`` scales stream ``i`` during step ``k``."""
        if n_streams < 1 or step <= 0:
            raise ValueError("need streams and a positive step")
        self.n_streams = n_streams
        self.step = step
        self.multipliers = [list(row) for row in multipliers]
        for row in self.multipliers:
            if len(row) != n_streams:
                raise ValueError("each step needs one multiplier per stream")

    def multiplier(self, t: float, stream: int) -> float:
        if not self.multipliers:
            return 1.0
        k = min(int(t / self.step), len(self.multipliers) - 1)
        return self.multipliers[k][stream]

    def peak(self) -> float:
        return max(max(row) for row in self.multipliers) if self.multipliers else 1.0

    @property
    def duration(self) -> float:
        return len(self.multipliers) * self.step


def flat_trace(n_streams: int, duration: float) -> DemandTrace:
    """Uniform, steady demand."""
    return DemandTrace(n_streams, duration, [[1.0] * n_streams])


def spike_trace(n_streams: int, step: float, n_steps: int,
                spike_factor: float = 3.0, base: float = 0.6,
                rng: np.random.Generator | None = None) -> DemandTrace:
    """One random stream spikes each step while the others idle down.

    Total offered load is held constant across steps so architectures are
    compared at equal aggregate demand.
    """
    rng = rng or np.random.default_rng(0)
    rows: List[List[float]] = []
    for _ in range(n_steps):
        hot = int(rng.integers(n_streams))
        row = [base] * n_streams
        row[hot] = spike_factor
        total = sum(row)
        rows.append([v * n_streams / total for v in row])
    return DemandTrace(n_streams, step, rows)


def rotating_hotspot_trace(n_streams: int, step: float, n_steps: int,
                           spike_factor: float = 3.0,
                           base: float = 0.6) -> DemandTrace:
    """Deterministic version: the hot stream rotates round-robin."""
    rows: List[List[float]] = []
    for k in range(n_steps):
        row = [base] * n_streams
        row[k % n_streams] = spike_factor
        total = sum(row)
        rows.append([v * n_streams / total for v in row])
    return DemandTrace(n_streams, step, rows)
