"""OLTP workload generation: the CICS/DBCTL-like testbed of paper §4.

Transactions are "relatively atomic in [their] execution with respect to
other transactions" (§2.3): a handful of reads, a few updates, Zipf-skewed
page access.  Two drive modes:

* **closed loop** — a fixed population of terminals, each submitting the
  next transaction after the previous completes (plus think time).  With
  zero think time this saturates the configuration, which is how the
  effective-capacity points of Figure 3 are measured.
* **open loop** — Poisson arrivals at an offered rate, optionally shaped
  by a :class:`DemandTrace`; used for response-time and balancing
  experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

import numpy as np

from ..config import OltpConfig
from ..simkernel import Event, Simulator, zipf_weights
from .traces import DemandTrace

__all__ = ["Transaction", "PageSampler", "OltpGenerator"]


@dataclass
class Transaction:
    """One unit of OLTP work."""

    txn_id: int
    arrival: float
    home: int  # index of the system whose network endpoint received it
    reads: List[int]
    writes: List[int]
    service_class: str = "OLTP"
    done: Optional[Event] = None


class PageSampler:
    """Zipf-skewed page sampling with O(log n) draws."""

    def __init__(self, n_pages: int, theta: float, rng: np.random.Generator):
        self.n_pages = n_pages
        self.rng = rng
        weights = zipf_weights(n_pages, theta)
        self._cum = np.cumsum(weights)
        # hot pages are scattered across the page space, not clustered at
        # the front, so partitioned baselines aren't trivially pessimal
        perm_rng = np.random.default_rng(12345)
        self._perm = perm_rng.permutation(n_pages)

    def hottest(self, k: int) -> List[int]:
        """The ``k`` most-popular page ids (for buffer-pool prewarming)."""
        return [int(p) for p in self._perm[: min(k, self.n_pages)]]

    def sample(self, k: int) -> List[int]:
        """Draw ``k`` distinct pages (sorted, for ordered lock acquisition)."""
        out: set = set()
        # distinct-sample by rejection; skew makes duplicates common for
        # small k, so cap the attempts and top up uniformly if needed
        attempts = 0
        while len(out) < k and attempts < 8 * k:
            u = self.rng.random(k)
            for page in np.searchsorted(self._cum, u):
                out.add(int(self._perm[min(page, self.n_pages - 1)]))
                if len(out) >= k:
                    break
            attempts += k
        while len(out) < k:
            out.add(int(self.rng.integers(self.n_pages)))
        return sorted(out)


class OltpGenerator:
    """Drives a router (SysplexRouter-compatible: ``route(txn)``)."""

    def __init__(self, sim: Simulator, config: OltpConfig, n_pages: int,
                 n_systems: int, rng: np.random.Generator,
                 router, trace: Optional[DemandTrace] = None,
                 partition_affinity: bool = False,
                 remote_fraction: float = 0.1,
                 tracer=None):
        """``partition_affinity`` models a *tuned* partitioned workload:
        stream ``i``'s transactions predominantly access the ``i``-th
        contiguous segment of the page space (the data a shared-nothing
        system would assign to node ``i``), with ``remote_fraction`` of
        accesses landing elsewhere.  §2.3's argument is about demand
        spikes against such data segments."""
        self.sim = sim
        self.config = config
        self.n_systems = n_systems
        self.n_pages = n_pages
        self.rng = rng
        self.router = router
        self.trace = trace
        self.tracer = tracer  # span Tracer or None (distinct from trace,
        # which is the demand-shape DemandTrace)
        self.sampler = PageSampler(n_pages, config.zipf_theta, rng)
        self.partition_affinity = partition_affinity
        self.remote_fraction = remote_fraction
        if partition_affinity:
            seg = n_pages // n_systems
            self._segments = [
                (i * seg, PageSampler(seg, config.zipf_theta, rng))
                for i in range(n_systems)
            ]
        self._next_id = 0
        self.generated = 0

    # -- transaction synthesis ---------------------------------------------
    def make_transaction(self, home: int) -> Transaction:
        self._next_id += 1
        self.generated += 1
        if self.tracer is not None:
            self.tracer.count("txn.generated")
        k = self.config.reads_per_txn + self.config.writes_per_txn
        w = self.config.writes_per_txn
        if self.partition_affinity:
            offset, seg_sampler = self._segments[home % len(self._segments)]
            n_remote = int(self.rng.binomial(k, self.remote_fraction))
            local = [offset + p for p in seg_sampler.sample(k - n_remote)]
            remote = self.sampler.sample(n_remote) if n_remote else []
            pages = sorted(set(local) | set(remote))
            while len(pages) < k:  # collision between local and remote draw
                pages.append(int(self.rng.integers(self.n_pages)))
            pages = sorted(pages)[:k]
        else:
            pages = self.sampler.sample(k)
        idx = self.rng.permutation(k)  # updates hit a random subset
        return Transaction(
            txn_id=self._next_id,
            arrival=self.sim.now,
            home=home,
            reads=sorted(pages[i] for i in idx[w:]),
            writes=sorted(pages[i] for i in idx[:w]),
        )

    # -- closed loop ----------------------------------------------------------
    def start_closed_loop(self, terminals_per_system: int) -> int:
        """Spawn terminal processes; returns the total population."""
        total = 0
        for home in range(self.n_systems):
            for _ in range(terminals_per_system):
                self.sim.process(self._terminal(home), name=f"term-{home}")
                total += 1
        return total

    def _terminal(self, home: int) -> Generator:
        think = self.config.think_time
        while True:
            if think > 0:
                yield self.sim.timeout(float(self.rng.exponential(think)))
            txn = self.make_transaction(home)
            txn.done = Event(self.sim)
            self.router.route(txn)
            yield txn.done

    # -- open loop ----------------------------------------------------------------
    def start_open_loop(self, tps_per_system: float) -> None:
        """Poisson arrivals per system, shaped by the trace if present."""
        for home in range(self.n_systems):
            self.sim.process(
                self._arrivals(home, tps_per_system), name=f"arrivals-{home}"
            )

    def _arrivals(self, home: int, base_rate: float) -> Generator:
        if base_rate <= 0:
            return  # idle stream (used when arrivals are driven manually)
        peak = self.trace.peak() if self.trace else 1.0
        max_rate = base_rate * peak
        while True:
            # thinning for the time-varying Poisson process
            yield self.sim.timeout(float(self.rng.exponential(1.0 / max_rate)))
            mult = (
                self.trace.multiplier(self.sim.now, home) if self.trace else 1.0
            )
            if self.rng.random() <= (base_rate * mult) / max_rate:
                self.router.route(self.make_transaction(home))
