"""Synthetic workloads: OLTP (CICS/DBCTL-like), decision support, and
demand-fluctuation traces (paper §2.3, §4)."""

from .dss import Query, QuerySplitter
from .oltp import OltpGenerator, PageSampler, Transaction
from .traces import DemandTrace, flat_trace, rotating_hotspot_trace, spike_trace

__all__ = [
    "DemandTrace",
    "OltpGenerator",
    "PageSampler",
    "Query",
    "QuerySplitter",
    "Transaction",
    "flat_trace",
    "rotating_hotspot_trace",
    "spike_trace",
]
