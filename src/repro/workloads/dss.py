"""Decision-support workload: parallel query decomposition.

Paper §2.3: "parallelism can be attained by breaking up complex queries
into smaller sub-queries, and distributing the component queries across
multiple processors (cpu) within a single system or across multiple
systems in a parallel sysplex.  Once all sub-queries have completed, the
original query response can be constructed from the aggregate of the
sub-query answers."

A query scans a page range; the splitter carves it into sub-scans, ships
them to systems chosen by WLM, runs them (CPU per page + chained I/O for
the cold fraction), and merges at the coordinator.  ABL-DSS measures the
speedup curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence


from ..config import XcfConfig
from ..hardware.dasd import DasdFarm
from ..simkernel import Simulator

__all__ = ["Query", "QuerySplitter"]

#: CPU to scan one page (predicate evaluation)
SCAN_CPU_PER_PAGE = 15e-6
#: coordinator CPU to merge one sub-query's answer
MERGE_CPU = 200e-6
#: fraction of scanned pages that need a DASD read (rest are buffered);
#: sequential scans ride chained I/O so the cost per cold page is low
COLD_FRACTION = 0.25
CHAINED_PAGES_PER_IO = 16


@dataclass
class Query:
    """A relational scan over ``n_pages`` pages starting at ``first_page``."""

    query_id: int
    first_page: int
    n_pages: int


class QuerySplitter:
    """Decomposes queries into sub-queries and runs them sysplex-wide."""

    def __init__(self, sim: Simulator, nodes: Sequence, farm: DasdFarm,
                 wlm, xcf_config: XcfConfig):
        self.sim = sim
        self.nodes = list(nodes)
        self.farm = farm
        self.wlm = wlm
        self.xcf_config = xcf_config
        self.queries_run = 0

    def run_query(self, query: Query, parallelism: int,
                  coordinator=None, priority: int = 1) -> Generator:
        """Process step: execute one query with ``parallelism`` sub-queries.

        ``priority`` is the dispatch priority WLM assigned to this work's
        service class (batch/query work typically runs below OLTP so a
        scan cannot push transactions off their response-time goal).
        Returns the elapsed (response) time.
        """
        start = self.sim.now
        live = [n for n in self.nodes if n.alive]
        if not live:
            raise RuntimeError("no system available")
        coordinator = coordinator if coordinator is not None else live[0]
        parallelism = max(1, min(parallelism, query.n_pages))

        # carve the scan range
        chunk = query.n_pages // parallelism
        extras = query.n_pages % parallelism
        subqueries: List[tuple] = []
        offset = query.first_page
        for i in range(parallelism):
            size = chunk + (1 if i < extras else 0)
            if size:
                subqueries.append((offset, size))
                offset += size

        procs = []
        for i, (first, size) in enumerate(subqueries):
            target = self.wlm.select_system(live)
            remote = target is not coordinator
            procs.append(
                self.sim.process(
                    self._subquery(coordinator, target, first, size, remote,
                                   priority),
                    name=f"subq-{query.query_id}.{i}",
                )
            )
        yield self.sim.all_of(procs)

        # merge phase at the coordinator
        yield from coordinator.cpu.consume(MERGE_CPU * len(subqueries),
                                           priority=priority)
        self.queries_run += 1
        return self.sim.now - start

    def _subquery(self, coordinator, target, first: int, size: int,
                  remote: bool, priority: int = 1) -> Generator:
        if remote:  # ship the request
            yield from coordinator.cpu.consume(self.xcf_config.message_cpu,
                                               priority=priority)
            yield self.sim.timeout(self.xcf_config.message_latency)
            yield from target.cpu.consume(self.xcf_config.message_cpu,
                                          priority=priority)

        # I/O: the cold fraction arrives via chained sequential reads
        cold_pages = int(size * COLD_FRACTION)
        ios = cold_pages // CHAINED_PAGES_PER_IO + (
            1 if cold_pages % CHAINED_PAGES_PER_IO else 0
        )
        for i in range(ios):
            pages = min(CHAINED_PAGES_PER_IO,
                        cold_pages - i * CHAINED_PAGES_PER_IO)
            device = self.farm.device_for(first + i * CHAINED_PAGES_PER_IO)
            yield from device.io(pages=pages, priority=priority)

        # CPU: scan every page, in dispatchable slices so higher-priority
        # work can get the engine between slices
        remaining = SCAN_CPU_PER_PAGE * size
        slice_cpu = 0.0005
        while remaining > 0:
            burn = min(slice_cpu, remaining)
            yield from target.cpu.consume(burn, priority=priority)
            remaining -= burn

        if remote:  # return the answer
            yield from target.cpu.consume(self.xcf_config.message_cpu,
                                          priority=priority)
            yield self.sim.timeout(self.xcf_config.message_latency)
            yield from coordinator.cpu.consume(self.xcf_config.message_cpu,
                                               priority=priority)
