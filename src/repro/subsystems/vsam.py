"""VSAM record-level sharing (RLS): the paper's in-development exploiter.

§5.2: "DFSMS support for multi-system data-sharing of VSAM files is
currently under development and will similarly exploit the Coupling
Facility."  That support shipped as VSAM RLS (DFSMS 1.3): an SMSVSAM
instance per system sharing keyed datasets with **record-level locks**
through the CF lock structure and **control-interval (CI) buffers** kept
coherent through a CF cache structure.

This module implements a KSDS-like keyed dataset and the RLS access
layer on top of the same :class:`LockManager` / :class:`BufferManager`
machinery the database manager uses — which is exactly the point the
paper makes: the CF's lock/cache models are general substrates that any
data manager can adopt.

The interesting systems property is **lock granularity**: RLS locks
*records*, so two systems updating different records in the same CI
proceed concurrently (the CI page itself is kept coherent by
cross-invalidation, serialized only for the microseconds of the CF write
command), where a page-locking manager would serialize them for the
whole transaction.  ABL-GRAN measures that difference.
"""

from __future__ import annotations

import bisect
from typing import Dict, Generator, List, Optional, Tuple

from ..cf.lock import LockMode
from ..simkernel import Simulator
from .buffermgr import BufferManager
from .lockmgr import LockManager
from .logmgr import LogManager

__all__ = ["VsamDataset", "VsamCatalog", "VsamRls"]

#: CPU per RLS request (SMSVSAM path length)
RLS_REQUEST_CPU = 45e-6
#: extra CPU for a CI split (moving records, updating the index)
CI_SPLIT_CPU = 300e-6


class VsamDataset:
    """A keyed dataset: records grouped into control intervals.

    The record→CI map and per-CI population are shared metadata (the
    VSAM index, itself CI-cached in reality; modeled as shared state with
    costs charged at the access layer).
    """

    def __init__(self, name: str, base_page: int, max_cis: int,
                 records_per_ci: int = 20):
        if records_per_ci < 2:
            raise ValueError("a CI must hold at least 2 records")
        self.name = name
        self.base_page = base_page
        self.max_cis = max_cis
        self.records_per_ci = records_per_ci
        #: key -> CI index within this dataset
        self._ci_of_key: Dict[object, int] = {}
        #: CI index -> set of keys living there
        self._ci_members: Dict[int, set] = {}
        #: all keys in collating sequence (the KSDS index)
        self._sorted_keys: List = []
        self._next_ci = 0
        #: records carry version counters (value payloads are not modeled)
        self.versions: Dict[object, int] = {}
        self.ci_splits = 0

    # -- placement -----------------------------------------------------------
    def page_of(self, ci: int) -> int:
        return self.base_page + ci

    def ci_for(self, key: object) -> Optional[int]:
        return self._ci_of_key.get(key)

    def exists(self, key: object) -> bool:
        return key in self._ci_of_key

    def _alloc_ci(self) -> int:
        if self._next_ci >= self.max_cis:
            raise RuntimeError(f"dataset {self.name} is full")
        ci = self._next_ci
        self._next_ci += 1
        self._ci_members[ci] = set()
        return ci

    def place_new_record(self, key: object) -> Tuple[int, bool]:
        """Find the CI for a new key (KSDS: its predecessor's CI);
        returns (ci, split_occurred)."""
        if key in self._ci_of_key:
            raise KeyError(f"duplicate key {key!r}")
        i = bisect.bisect_left(self._sorted_keys, key)
        if self._sorted_keys:
            anchor = self._sorted_keys[max(0, i - 1)]
            target = self._ci_of_key[anchor]
        else:
            target = self._alloc_ci()
        split = False
        if len(self._ci_members[target]) >= self.records_per_ci:
            # CI split: the upper half of the records (by key) move to a
            # freshly allocated CI, exactly like a VSAM CI split
            new_ci = self._alloc_ci()
            members = sorted(self._ci_members[target])
            movers = members[len(members) // 2:]
            for k in movers:
                self._ci_members[target].discard(k)
                self._ci_members[new_ci].add(k)
                self._ci_of_key[k] = new_ci
            if key >= movers[0]:
                target = new_ci
            split = True
            self.ci_splits += 1
        self._ci_members[target].add(key)
        self._ci_of_key[key] = target
        bisect.insort(self._sorted_keys, key)
        self.versions[key] = 0
        return target, split

    def remove_record(self, key: object) -> int:
        ci = self._ci_of_key.pop(key)
        self._ci_members[ci].discard(key)
        i = bisect.bisect_left(self._sorted_keys, key)
        if i < len(self._sorted_keys) and self._sorted_keys[i] == key:
            del self._sorted_keys[i]
        self.versions.pop(key, None)
        return ci

    def keys_in_range(self, lo, hi) -> List[object]:
        i = bisect.bisect_left(self._sorted_keys, lo)
        j = bisect.bisect_right(self._sorted_keys, hi)
        return list(self._sorted_keys[i:j])

    @property
    def n_records(self) -> int:
        return len(self._ci_of_key)

    @property
    def n_cis(self) -> int:
        return self._next_ci


class VsamCatalog:
    """Sysplex-wide dataset registry; allocates page ranges on the farm."""

    def __init__(self, first_page: int):
        self._next_page = first_page
        self.datasets: Dict[str, VsamDataset] = {}

    def define(self, name: str, max_cis: int,
               records_per_ci: int = 20) -> VsamDataset:
        if name in self.datasets:
            raise ValueError(f"dataset {name!r} already defined")
        ds = VsamDataset(name, self._next_page, max_cis, records_per_ci)
        self._next_page += max_cis
        self.datasets[name] = ds
        return ds

    def lookup(self, name: str) -> VsamDataset:
        return self.datasets[name]


class VsamRls:
    """One system's RLS instance (the SMSVSAM address space).

    ``lock_granularity`` selects record-level locks (RLS proper) or
    CI/page-level locks (the pre-RLS behaviour) — the ABL-GRAN knob.
    """

    def __init__(self, sim: Simulator, node, catalog: VsamCatalog,
                 lockmgr: LockManager, buffers: BufferManager,
                 log: LogManager, lock_granularity: str = "record"):
        if lock_granularity not in ("record", "ci"):
            raise ValueError("granularity is 'record' or 'ci'")
        self.sim = sim
        self.node = node
        self.catalog = catalog
        self.locks = lockmgr
        self.buffers = buffers
        self.log = log
        self.lock_granularity = lock_granularity
        self.requests = 0
        self.commits = 0

    # -- internals -----------------------------------------------------------
    def _owner(self, txn_id: object) -> tuple:
        return (self.node.name, "vsam", txn_id)

    def _lock_name(self, ds: VsamDataset, key: object, ci: int):
        if self.lock_granularity == "record":
            return ("V", ds.name, key)
        return ("V", ds.name, "ci", ci)

    def _touch(self, ds: VsamDataset, key: object, ci: int, mode: str,
               owner) -> Generator:
        yield from self.node.cpu.consume(RLS_REQUEST_CPU)
        yield from self.locks.lock(owner, self._lock_name(ds, key, ci), mode)
        yield from self.buffers.get_page(ds.page_of(ci))
        self.requests += 1

    # -- record API (process steps) ----------------------------------------------
    def get(self, txn_id: object, ds_name: str, key: object) -> Generator:
        """Read a record; returns its version or None if absent."""
        ds = self.catalog.lookup(ds_name)
        ci = ds.ci_for(key)
        if ci is None:
            yield from self.node.cpu.consume(RLS_REQUEST_CPU)
            return None
        yield from self._touch(ds, key, ci, LockMode.SHR, self._owner(txn_id))
        return ds.versions.get(key)

    def put(self, txn_id: object, ds_name: str, key: object) -> Generator:
        """Insert or update a record; returns ('insert'|'update', ci)."""
        ds = self.catalog.lookup(ds_name)
        owner = self._owner(txn_id)
        ci = ds.ci_for(key)
        if ci is not None:
            yield from self._touch(ds, key, ci, LockMode.EXCL, owner)
            ds.versions[key] = ds.versions.get(key, 0) + 1
            self.buffers.mark_dirty(ds.page_of(ci))
            self.log.log_update(owner, ds.page_of(ci))
            return ("update", ci)
        # insert: may split a CI (extra work, extra page touched)
        ci, split = ds.place_new_record(key)
        yield from self._touch(ds, key, ci, LockMode.EXCL, owner)
        if split:
            yield from self.node.cpu.consume(CI_SPLIT_CPU)
            # the split sibling is rewritten too
            sibling = max(0, ci - 1)
            yield from self.buffers.get_page(ds.page_of(sibling))
            self.buffers.mark_dirty(ds.page_of(sibling))
            self.log.log_update(owner, ds.page_of(sibling))
        ds.versions[key] = 1
        self.buffers.mark_dirty(ds.page_of(ci))
        self.log.log_update(owner, ds.page_of(ci))
        return ("insert", ci)

    def erase(self, txn_id: object, ds_name: str, key: object) -> Generator:
        """Delete a record; returns True if it existed."""
        ds = self.catalog.lookup(ds_name)
        ci = ds.ci_for(key)
        if ci is None:
            yield from self.node.cpu.consume(RLS_REQUEST_CPU)
            return False
        owner = self._owner(txn_id)
        yield from self._touch(ds, key, ci, LockMode.EXCL, owner)
        ds.remove_record(key)
        self.buffers.mark_dirty(ds.page_of(ci))
        self.log.log_update(owner, ds.page_of(ci))
        return True

    def read_range(self, txn_id: object, ds_name: str, lo, hi) -> Generator:
        """Keyed browse: SHR-lock and read every record in [lo, hi]."""
        ds = self.catalog.lookup(ds_name)
        owner = self._owner(txn_id)
        out = []
        for key in ds.keys_in_range(lo, hi):
            ci = ds.ci_for(key)
            if ci is None:
                continue
            yield from self._touch(ds, key, ci, LockMode.SHR, owner)
            out.append((key, ds.versions.get(key)))
        return out

    # -- transaction boundaries --------------------------------------------------
    def commit(self, txn_id: object) -> Generator:
        owner = self._owner(txn_id)
        touched = sorted(set(self.log.in_flight.get(owner, [])))
        yield from self.log.force()
        yield from self.buffers.commit_writes(touched)
        self.log.log_end(owner)
        yield from self.locks.unlock_all(owner)
        self.commits += 1

    def backout(self, txn_id: object) -> Generator:
        owner = self._owner(txn_id)
        self.log.log_end(owner)
        yield from self.locks.unlock_all(owner)
