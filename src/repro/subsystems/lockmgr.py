"""Global lock manager: the IRLM-like distributed lock manager.

Implements the paper's §3.3.1 division of labour:

* The **fast path** is one CPU-synchronous CF command per lock/unlock —
  "the majority of requests for locks [are] granted cpu-synchronously
  ... measured in micro-seconds."
* On contention the CF returns the holders' identities and the lock
  managers resolve it in software — "selective cross-system communication
  for lock negotiation" — which costs real CPU and messaging latency at
  both ends.  **False contention** (hash-class collision without a real
  conflict) pays the negotiation and is then granted.
* EXCL locks piggyback **record data** onto the CF request so a system
  failure leaves *retained locks* that protect in-flight updates until
  peer recovery releases them.

The *fine-grained* truth (which owner holds which resource in which mode)
is the union of the lock managers' software state; it is held in the
shared :class:`LockSpace`, which stands in for the distributed negotiation
protocol state the IRLMs keep in concert.  The CF lock table remains the
hash-class approximation — exactly its role in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..cf.lock import LockMode, LockStructure
from ..config import XcfConfig
from ..mvs.xes import XesConnection
from ..simkernel import Event, Simulator

__all__ = ["LockSpace", "LockManager", "DeadlockAbort", "RetainedLockReject"]

#: requester-side CPU burned resolving one contention via messaging
NEGOTIATION_CPU = 150e-6
#: holder-side CPU for its half of the negotiation
HOLDER_NEGOTIATION_CPU = 100e-6


class DeadlockAbort(Exception):
    """This owner was chosen as the deadlock victim; abort and retry."""


class RetainedLockReject(Exception):
    """The requested resource is protected by a retained lock.

    Real lock managers *reject* such requests outright (IMS U3303 /
    DB2 -904 resource-unavailable) instead of queueing them — queueing
    would tie up every region's tasks behind data that cannot be granted
    until recovery completes.  The transaction fails and is counted as
    lost work during the recovery window.
    """


@dataclass
class _Waiter:
    owner: object
    mode: str
    event: Event
    manager: "LockManager"
    enqueued_at: float
    resource: object = None
    granted: bool = False


class _Resource:
    """Software-level state for one lock resource name."""

    __slots__ = ("holders", "waiters")

    def __init__(self):
        self.holders: Dict[object, str] = {}  # owner -> mode (EXCL wins)
        self.waiters: List[_Waiter] = []


class LockSpace:
    """Shared fine-grained lock state across all lock-manager instances."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._resources: Dict[object, _Resource] = {}
        #: resource -> (system_name, mode): locks of failed systems
        self.retained: Dict[object, Tuple[str, str]] = {}
        self._retained_waiters: Dict[object, List[Event]] = {}
        self.managers: Dict[str, "LockManager"] = {}
        self.waits = 0
        self.deadlocks = 0

    # -- helpers --------------------------------------------------------------
    def _res(self, name: object) -> _Resource:
        r = self._resources.get(name)
        if r is None:
            r = self._resources[name] = _Resource()
        return r

    @staticmethod
    def _compatible(existing: Dict[object, str], owner: object, mode: str) -> bool:
        for other, omode in existing.items():
            if other == owner:
                continue
            if omode == LockMode.EXCL or mode == LockMode.EXCL:
                return False
        return True

    def conflicts_with_retained(self, name: object, mode: str) -> bool:
        entry = self.retained.get(name)
        if entry is None:
            return False
        _, rmode = entry
        return rmode == LockMode.EXCL or mode == LockMode.EXCL

    def wait_for_retained(self, name: object) -> Event:
        """An event fired when ``name``'s retained protection clears.

        Mainline lock requests REJECT on retained conflicts (see
        RetainedLockReject); this hook is for recovery-aware callers that
        prefer to park until peer recovery completes.
        """
        ev = Event(self.sim)
        self._retained_waiters.setdefault(name, []).append(ev)
        return ev

    # -- grant / release (software truth) --------------------------------------
    def try_grant(self, name: object, owner: object, mode: str) -> bool:
        r = self._res(name)
        if not self._compatible(r.holders, owner, mode):
            return False
        # EXCL upgrade wins over an existing SHR hold by the same owner
        if r.holders.get(owner) != LockMode.EXCL:
            r.holders[owner] = mode
        return True

    def enqueue(self, waiter: _Waiter, name: object) -> None:
        self._res(name).waiters.append(waiter)
        self.waits += 1

    def release(self, name: object, owner: object) -> List[_Waiter]:
        """Remove a hold and return newly grantable waiters (FIFO)."""
        r = self._resources.get(name)
        if r is None:
            return []
        r.holders.pop(owner, None)
        return self.dispatch(name)

    def dispatch(self, name: object) -> List[_Waiter]:
        """Grant as many queued waiters as compatibility (and retained
        protection) allows.

        **Conversions first**: a waiter whose owner already holds the
        resource (a SHR->EXCL upgrade) is granted ahead of queue order
        the moment it becomes compatible -- standard lock-manager
        behaviour, and necessary: a conversion stuck behind a new request
        it blocks would deadlock invisibly (the converter holds what the
        head waiter needs while queue order stops the converter forever).
        New requests then grant FIFO without overtaking.
        """
        r = self._resources.get(name)
        if r is None:
            return []
        granted: List[_Waiter] = []

        # pass 1: conversions (owner already among the holders)
        for w in list(r.waiters):
            if w.granted or w.owner not in r.holders:
                continue
            if self.conflicts_with_retained(name, w.mode):
                continue
            if self._compatible(r.holders, w.owner, w.mode):
                if r.holders.get(w.owner) != LockMode.EXCL:
                    r.holders[w.owner] = w.mode
                w.granted = True
                r.waiters.remove(w)
                granted.append(w)

        # pass 2: new requests, FIFO without overtaking
        for w in list(r.waiters):
            if w.granted:
                continue
            if self.conflicts_with_retained(name, w.mode):
                break  # protected until peer recovery completes
            if self._compatible(r.holders, w.owner, w.mode):
                if r.holders.get(w.owner) != LockMode.EXCL:
                    r.holders[w.owner] = w.mode
                w.granted = True
                r.waiters.remove(w)
                granted.append(w)
                if w.mode == LockMode.EXCL:
                    break  # an exclusive grant blocks everything behind it
            else:
                break  # FIFO fairness: don't overtake the head waiter
        if not r.holders and not r.waiters:
            del self._resources[name]
        return granted

    def remove_waiter(self, name: object, waiter: _Waiter) -> None:
        r = self._resources.get(name)
        if r is not None and waiter in r.waiters:
            r.waiters.remove(waiter)
            if not r.holders and not r.waiters:
                del self._resources[name]

    # -- retained locks ----------------------------------------------------------
    def retain_for_system(self, system_name: str, held: Dict[object, str]) -> None:
        """A system died: its EXCL locks become retained."""
        for name, mode in held.items():
            if mode == LockMode.EXCL:
                self.retained[name] = (system_name, mode)

    def clear_retained(self, system_name: str) -> List[object]:
        """Peer recovery finished: release this system's retained locks."""
        cleared = []
        for name in [n for n, (s, _) in self.retained.items() if s == system_name]:
            del self.retained[name]
            cleared.append(name)
            for ev in self._retained_waiters.pop(name, []):
                if not ev.triggered:
                    ev.succeed()
            # queued waiters blocked by the retained protection can now go
            for w in self.dispatch(name):
                if not w.event.triggered:
                    w.event.succeed()
        return cleared

    # -- introspection -------------------------------------------------------------
    def holders_of(self, name: object) -> Dict[object, str]:
        r = self._resources.get(name)
        return dict(r.holders) if r else {}

    def wait_graph(self) -> Dict[object, Set[object]]:
        """waiter-owner -> {holder-owners} edges for deadlock detection."""
        graph: Dict[object, Set[object]] = {}
        for name, r in self._resources.items():
            for w in r.waiters:
                if w.granted:
                    continue
                blockers = {o for o in r.holders if o != w.owner}
                if blockers:
                    graph.setdefault(w.owner, set()).update(blockers)
        return graph

    def check_invariant(self) -> None:
        """2PL safety: never two incompatible holders on one resource."""
        for name, r in self._resources.items():
            excl = [o for o, m in r.holders.items() if m == LockMode.EXCL]
            if excl:
                assert len(r.holders) == 1, (
                    f"{name}: EXCL held by {excl} alongside {r.holders}"
                )


class LockManager:
    """One system's lock-manager instance (one CF connector)."""

    def __init__(self, sim: Simulator, space: LockSpace, xes: XesConnection,
                 xcf_config: XcfConfig, system_name: str, trace=None):
        self.sim = sim
        self.space = space
        self.xes = xes
        self.xcf_config = xcf_config
        self.system_name = system_name
        self.trace = trace  # Tracer or None (zero-cost when disabled)
        #: owner -> {resource -> mode} locks held through this instance
        self.held: Dict[object, Dict[object, str]] = {}
        space.managers[system_name] = self
        self.sync_grants = 0
        self.negotiations = 0
        self.alive = True

    @property
    def structure(self) -> LockStructure:
        return self.xes.structure  # type: ignore[return-value]

    # -- public API (process steps) -----------------------------------------------
    def lock(self, owner: object, resource: object, mode: str) -> Generator:
        """Acquire ``resource`` in ``mode`` for ``owner`` (a transaction).

        Raises :class:`DeadlockAbort` if this owner is chosen as a
        deadlock victim while waiting.
        """
        if not self.alive:
            from ..hardware.cpu import SystemDown

            raise SystemDown(self.system_name)
        space = self.space
        structure, conn = self.structure, self.xes.connector

        # one closure per call is load-bearing: several transactions on
        # one system lock concurrently, and the CF executes ``fn`` at
        # command-service time, long after this frame moved on
        def cf_request():
            result = structure.request(conn, resource, mode)
            if result.granted and mode == LockMode.EXCL:
                # record data piggybacked on the same command (§3.3.1)
                structure.write_record(conn, resource, {"sys": self.system_name})
            return result

        # duplexing: the same request against the secondary instance
        # (identical state => identical grant decision)
        def cf_request_mirror(s, c):
            result = s.request(c, resource, mode)
            if result.granted and mode == LockMode.EXCL:
                s.write_record(c, resource, {"sys": self.system_name})

        # Retained-lock check: updates of a failed system stay protected
        # until peer recovery completes; conflicting requests are
        # REJECTED, not queued (see RetainedLockReject).  ``retained`` is
        # empty except during a recovery window, so the common case is
        # one dict truthiness test.
        if space.retained and space.conflicts_with_retained(resource, mode):
            raise RetainedLockReject(resource)

        result = yield from self.xes.sync(cf_request, mirror=cf_request_mirror)

        if result.granted:
            if space.retained and space.conflicts_with_retained(resource,
                                                                mode):
                self._undo_interest(resource, mode)  # system died mid-request
                raise RetainedLockReject(resource)
            if space.try_grant(resource, owner, mode):
                self.sync_grants += 1
                self._note_held(owner, resource, mode)
                return
            # CF said yes but software state disagrees (another owner
            # on this same system holds it): undo the recorded
            # interest and wait locally via the common queue.
            self._undo_interest(resource, mode)
            yield from self._wait(owner, resource, mode)
            return

        yield from self._lock_contended(owner, resource, mode)

    def _undo_interest(self, resource: object, mode: str) -> None:
        """Back out interest recorded by a granted-then-rejected request.

        Applied to every instance of a duplexed pair — the mirror
        recorded the interest on the secondary too.
        """
        for structure, conn in self.xes.instances():
            structure.release(conn, resource, mode)
            if mode == LockMode.EXCL:
                structure.delete_record(conn, resource)

    def _lock_contended(self, owner: object, resource: object,
                        mode: str) -> Generator:
        """The negotiation path: the CF returned the holders' identities."""
        structure, conn = self.structure, self.xes.connector
        self.negotiations += 1
        tr = self.trace
        if tr is None:
            yield from self.xes.node.cpu.consume(NEGOTIATION_CPU)
            yield self.sim.timeout(self.xcf_config.message_latency)
        else:
            yield from tr.traced(
                "lock.negotiate", self._negotiate_cost()
            )
        self._charge_holders(resource)

        if self.space.conflicts_with_retained(resource, mode):
            raise RetainedLockReject(resource)
        if self.space.try_grant(resource, owner, mode):
            # false contention (or holder released meanwhile): grant
            yield from self.xes.sync(
                lambda: structure.force_record(conn, resource, mode),
                mirror=lambda s, c: s.force_record(c, resource, mode),
            )
            self._note_held(owner, resource, mode)
            return
        yield from self._wait(owner, resource, mode)

    def _negotiate_cost(self) -> Generator:
        """Requester-side negotiation cost (split out for span tracing)."""
        yield from self.xes.node.cpu.consume(NEGOTIATION_CPU)
        yield self.sim.timeout(self.xcf_config.message_latency)

    def _wait(self, owner: object, resource: object, mode: str) -> Generator:
        waiter = _Waiter(owner, mode, Event(self.sim), self, self.sim.now,
                         resource)
        self.space.enqueue(waiter, resource)
        tr = self.trace
        span = -1 if tr is None else tr.begin("lock.wait")
        try:
            yield waiter.event
        except DeadlockAbort:
            self.space.remove_waiter(resource, waiter)
            raise
        finally:
            if tr is not None:
                tr.end(span)
        if not self.alive:
            # this instance died (and was swept) while we were queued; the
            # grant we just received must be handed straight back or the
            # resource leaks a hold nobody will ever release
            from ..hardware.cpu import SystemDown

            for w in self.space.release(resource, owner):
                if not w.event.triggered:
                    w.event.succeed()
            raise SystemDown(self.system_name)
        # granted by a releaser: record interest at the CF and locally
        try:
            yield from self.xes.sync(
                lambda: self.structure.force_record(
                    self.xes.connector, resource, mode),
                mirror=lambda s, c: s.force_record(c, resource, mode),
            )
        except BaseException:
            # this system died between the software grant and the CF
            # record: undo the grant so the resource isn't poisoned, and
            # wake whoever can now go
            for w in self.space.release(resource, owner):
                if not w.event.triggered:
                    w.event.succeed()
            raise
        self._note_held(owner, resource, mode)

    def _charge_holders(self, resource: object) -> None:
        """Holders pay their side of the negotiation (async CPU)."""

        def charge(mgr):
            try:
                yield from mgr.xes.node.cpu.consume(HOLDER_NEGOTIATION_CPU)
            except Exception:
                pass  # the holder died mid-negotiation: nothing to charge

        for owner, _mode in self.space.holders_of(resource).items():
            mgr = self._manager_of(owner)
            if mgr is not None and mgr.alive:
                self.sim.process(charge(mgr), name="negotiation-holder")

    def _manager_of(self, owner: object) -> Optional["LockManager"]:
        sys_name = owner[0] if isinstance(owner, tuple) else None
        return self.space.managers.get(sys_name) if sys_name else None

    def unlock(self, owner: object, resource: object, mode: str) -> Generator:
        """Release one lock: CF command + wake grantable waiters."""
        structure, conn = self.structure, self.xes.connector
        modes = self.held.get(owner, {})
        if resource not in modes:
            return

        def cf_release():
            structure.release(conn, resource, mode)
            if mode == LockMode.EXCL:
                structure.delete_record(conn, resource)

        def cf_release_mirror(s, c):
            s.release(c, resource, mode)
            if mode == LockMode.EXCL:
                s.delete_record(c, resource)

        yield from self.xes.sync(cf_release, mirror=cf_release_mirror)
        del modes[resource]
        if not modes:
            self.held.pop(owner, None)
        self._dispatch(resource, owner)

    def unlock_all(self, owner: object) -> Generator:
        """Release every lock ``owner`` holds in one batched CF command.

        IRLM releases a transaction's locks as a single commit-time sweep;
        the CF command's service time scales with the number of entries
        touched (``service_factor``), but only one link round trip is paid.
        """
        locks = list(self.held.get(owner, {}).items())
        if not locks:
            return
        structure, conn = self.structure, self.xes.connector

        def cf_release_all():
            for resource, mode in locks:
                structure.release(conn, resource, mode)
                if mode == LockMode.EXCL:
                    structure.delete_record(conn, resource)

        def cf_release_all_mirror(s, c):
            for resource, mode in locks:
                s.release(c, resource, mode)
                if mode == LockMode.EXCL:
                    s.delete_record(c, resource)

        yield from self.xes.sync(
            cf_release_all, mirror=cf_release_all_mirror,
            service_factor=max(1.0, 0.25 * len(locks))
        )
        self.held.pop(owner, None)
        for resource, _mode in locks:
            self._dispatch(resource, owner)

    def _dispatch(self, resource: object, owner: object) -> None:
        granted = self.space.release(resource, owner)
        for w in granted:
            # grant notification rides a cross-system message
            self.sim.call_at(
                self.sim.now + self.xcf_config.message_latency,
                lambda ev=w.event: ev.succeed() if not ev.triggered else None,
            )

    def abandon(self, owner: object) -> None:
        """Drop an owner's locks without costed CF commands.

        Used when the lock structure becomes unreachable (CF failure):
        the software holds must still be released so other systems'
        waiters can proceed.  If a *rebuilt* structure is already in
        place (this owner's interest was replayed into it before the
        owner's task noticed the failure), the replayed interest is
        reconciled away directly — leaving it would permanently mark the
        hash class as contended.
        """
        modes = self.held.pop(owner, {})
        pairs = self.xes.instances()
        for resource, mode in modes.items():
            for structure, conn in pairs:
                if not structure.lost and conn.active:
                    structure.release(conn, resource, mode)
                    if mode == LockMode.EXCL:
                        structure.delete_record(conn, resource)
            for w in self.space.release(resource, owner):
                if not w.event.triggered:
                    w.event.succeed()

    # -- bookkeeping -------------------------------------------------------------
    def _note_held(self, owner: object, resource: object, mode: str) -> None:
        modes = self.held.setdefault(owner, {})
        if modes.get(resource) != LockMode.EXCL:
            modes[resource] = mode

    def locks_of(self, owner: object) -> Dict[object, str]:
        return dict(self.held.get(owner, {}))

    # -- failure handling -----------------------------------------------------------
    def fail_instance(self) -> Dict[object, str]:
        """The hosting system died: convert holds to retained locks.

        Returns the retained set (resource -> mode) for recovery tracking.
        """
        self.alive = False
        all_held: Dict[object, str] = {}
        for owner, modes in self.held.items():
            for resource, mode in modes.items():
                if mode == LockMode.EXCL or resource not in all_held:
                    all_held[resource] = mode
        # Retained protection FIRST, so dispatch cannot hand a protected
        # resource to a waiter before recovery runs.
        self.space.retain_for_system(self.system_name, all_held)
        for owner, modes in self.held.items():
            for resource in modes:
                for w in self.space.release(resource, owner):
                    if not w.event.triggered:
                        w.event.succeed()
        self.held.clear()
        return {r: m for r, m in all_held.items() if m == LockMode.EXCL}


class DeadlockDetector:
    """Periodic wait-for-graph cycle detection; aborts the youngest victim."""

    def __init__(self, sim: Simulator, space: LockSpace, interval: float = 0.5):
        self.sim = sim
        self.space = space
        self.interval = interval
        self.victims = 0
        sim.process(self._loop(), name="deadlock-detector")

    def _loop(self):
        while True:
            yield self.sim.timeout(self.interval)
            self.sweep()

    def sweep(self) -> int:
        """One detection pass; returns number of victims aborted."""
        aborted = 0
        while True:
            cycle = self._find_cycle(self.space.wait_graph())
            if not cycle:
                return aborted
            victim = self._pick_victim(cycle)
            if victim is None:
                return aborted
            self._abort(victim)
            aborted += 1
            self.victims += 1
            self.space.deadlocks += 1

    @staticmethod
    def _find_cycle(graph: Dict[object, Set[object]]) -> Optional[List[object]]:
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[object, int] = {}
        stack: List[object] = []

        def dfs(u) -> Optional[List[object]]:
            color[u] = GRAY
            stack.append(u)
            # sorted: edge sets iterate in hash order, which varies with
            # PYTHONHASHSEED across interpreter invocations — the cycle
            # (and so the victim) must not depend on it
            for v in sorted(graph.get(u, ()), key=repr):
                if color.get(v, WHITE) == GRAY:
                    return stack[stack.index(v):]
                if color.get(v, WHITE) == WHITE and v in graph:
                    found = dfs(v)
                    if found:
                        return found
            stack.pop()
            color[u] = BLACK
            return None

        for node in graph:
            if color.get(node, WHITE) == WHITE:
                found = dfs(node)
                if found:
                    return found
        return None

    def _pick_victim(self, cycle: List[object]):
        # youngest waiter in the cycle (latest enqueue time)
        best, best_time = None, -1.0
        for name, r in self.space._resources.items():
            for w in r.waiters:
                if w.owner in cycle and not w.granted and w.enqueued_at > best_time:
                    best, best_time = w, w.enqueued_at
        return best

    def _abort(self, waiter: _Waiter) -> None:
        # remove from the queue NOW so this sweep's next find_cycle pass
        # sees the edge gone (the victim's process wakes strictly later)
        self.space.remove_waiter(waiter.resource, waiter)
        if not waiter.event.triggered:
            waiter.event.fail(DeadlockAbort(waiter.owner))
