"""TCP/IP single system image: the paper's named future enhancement.

Conclusion (§6): "Future enhancements are focused on ... single system
image for native TCP/IP networks, MVS servers to the World-Wide Web."
That work shipped as **dynamic VIPAs and the Sysplex Distributor**: one
stack advertises a virtual IP for the whole sysplex, spreads incoming
connections across the member stacks using WLM recommendations, and a
backup stack takes the VIPA over if the distributor's system fails.

Modeled here:

* :class:`TcpStack` — a system's TCP/IP stack + an HTTP-ish server:
  per-request CPU, a DASD touch for the non-cached fraction, persistent
  connections carrying several requests.
* :class:`SysplexDistributor` — connection routing by WLM weights, an
  inbound forwarding cost on the distributing stack (the real SD stays in
  the inbound path; outbound returns directly), instant rerouting around
  dead backends, and VIPA takeover by a backup stack when the
  distributor's own system dies.
* :class:`DnsRoundRobin` — the contemporary alternative: clients resolve
  one of N addresses and stick with it; a dead address keeps being handed
  out until the TTL expires, and those connections fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

import numpy as np

from ..hardware.dasd import DasdFarm
from ..hardware.system import SystemNode
from ..simkernel import MetricSet, Simulator, Tally

__all__ = ["WebConfig", "TcpStack", "SysplexDistributor", "DnsRoundRobin",
           "WebWorkload"]


@dataclass
class WebConfig:
    """Cost model for the web serving path."""

    #: server CPU per HTTP request (parse, handler, response build)
    request_cpu: float = 0.9e-3
    #: fraction of requests needing a DASD read (uncached content)
    cold_fraction: float = 0.25
    #: requests per persistent connection
    requests_per_connection: int = 4
    #: client think time between requests on a connection
    think_time: float = 20e-3
    #: network RTT client<->sysplex (per request)
    network_rtt: float = 5e-3
    #: distributor CPU per forwarded inbound request
    forward_cpu: float = 25e-6
    #: time for a backup stack to take over the VIPA
    vipa_takeover: float = 0.5
    #: DNS TTL: how long clients keep resolving a dead address
    dns_ttl: float = 5.0


class TcpStack:
    """One system's TCP/IP stack with an attached web server."""

    def __init__(self, sim: Simulator, node: SystemNode, farm: DasdFarm,
                 config: WebConfig, rng: np.random.Generator,
                 metrics: MetricSet):
        self.sim = sim
        self.node = node
        self.farm = farm
        self.config = config
        self.rng = rng
        self.metrics = metrics
        self.connections_served = 0
        self.requests_served = 0

    @property
    def available(self) -> bool:
        return self.node.alive

    def serve_connection(self, response_tally: Tally) -> Generator:
        """Process step: one persistent connection's request/response run."""
        from ..hardware.cpu import SystemDown

        cfg = self.config
        try:
            for i in range(cfg.requests_per_connection):
                if not self.node.alive:
                    self.metrics.counter("web.conn_broken").add()
                    return
                t0 = self.sim.now
                yield self.sim.timeout(cfg.network_rtt / 2)
                yield from self.node.cpu.consume(cfg.request_cpu)
                if self.rng.random() < cfg.cold_fraction:
                    page = int(self.rng.integers(1_000_000))
                    yield from self.farm.read_page(page)
                yield self.sim.timeout(cfg.network_rtt / 2)
                self.requests_served += 1
                self.metrics.counter("web.requests").add()
                response_tally.record(self.sim.now - t0)
                if i + 1 < cfg.requests_per_connection:
                    yield self.sim.timeout(
                        float(self.rng.exponential(cfg.think_time)))
        except SystemDown:
            # the stack's system died mid-connection: the client sees a
            # reset (new connections go elsewhere)
            self.metrics.counter("web.conn_broken").add()
            return
        self.connections_served += 1


class SysplexDistributor:
    """The sysplex-wide virtual IP: WLM-routed connection distribution."""

    def __init__(self, sim: Simulator, stacks: List[TcpStack], wlm,
                 config: WebConfig, metrics: MetricSet):
        self.sim = sim
        self.stacks = list(stacks)
        self.wlm = wlm
        self.config = config
        self.metrics = metrics
        #: index of the stack currently advertising the VIPA
        self.distributing = 0
        self._takeover_until = 0.0
        self.connections_routed = 0
        self.takeovers = 0

    def _distributor(self) -> Optional[TcpStack]:
        stack = self.stacks[self.distributing]
        if stack.available:
            return stack
        # VIPA takeover: the backup stack assumes the address
        for i, s in enumerate(self.stacks):
            if s.available:
                if self._takeover_until < self.sim.now:
                    self._takeover_until = (
                        self.sim.now + self.config.vipa_takeover)
                    self.takeovers += 1
                self.distributing = i
                return s
        return None

    def connect(self, response_tally: Tally) -> Generator:
        """Process step: one inbound connection, distributed and served."""
        dist = self._distributor()
        if dist is None:
            self.metrics.counter("web.conn_refused").add()
            return
        if self.sim.now < self._takeover_until:
            # the VIPA is moving: SYNs are lost until the backup answers
            yield self.sim.timeout(self._takeover_until - self.sim.now)
            dist = self._distributor()
            if dist is None:
                self.metrics.counter("web.conn_refused").add()
                return
        candidates = [s for s in self.stacks if s.available]
        if not candidates:
            self.metrics.counter("web.conn_refused").add()
            return
        chosen = self.wlm.select_system([c.node for c in candidates])
        target = next(s for s in candidates if s.node is chosen)
        self.connections_routed += 1
        # the distributor forwards every inbound segment of the connection
        fwd = (self.config.forward_cpu
               * self.config.requests_per_connection)
        self.sim.process(dist.node.cpu.consume(fwd), name="sd-forward")
        yield from target.serve_connection(response_tally)


class DnsRoundRobin:
    """The 1995 alternative: clients pin to an address from DNS."""

    def __init__(self, sim: Simulator, stacks: List[TcpStack],
                 config: WebConfig, metrics: MetricSet):
        self.sim = sim
        self.stacks = list(stacks)
        self.config = config
        self.metrics = metrics
        self._next = 0
        #: stack index -> time its death becomes visible to resolvers
        self._dead_visible_at: Dict[int, float] = {}
        self.connections_routed = 0

    def connect(self, response_tally: Tally) -> Generator:
        i = self._next % len(self.stacks)
        self._next += 1
        stack = self.stacks[i]
        if not stack.available:
            visible = self._dead_visible_at.setdefault(
                i, self.sim.now + self.config.dns_ttl)
            if self.sim.now < visible:
                # the stale A-record is still being handed out: the
                # connection times out and the user sees an error
                yield self.sim.timeout(self.config.network_rtt * 2)
                self.metrics.counter("web.conn_refused").add()
                return
            # TTL expired: resolver retries another address
            alive = [s for s in self.stacks if s.available]
            if not alive:
                self.metrics.counter("web.conn_refused").add()
                return
            stack = alive[self._next % len(alive)]
        self.connections_routed += 1
        yield from stack.serve_connection(response_tally)


class WebWorkload:
    """Open-loop connection arrivals against any ``connect()`` router."""

    def __init__(self, sim: Simulator, router, rng: np.random.Generator):
        self.sim = sim
        self.router = router
        self.rng = rng
        self.responses = Tally("web.rt")
        self.generated = 0

    def start(self, connections_per_second: float) -> None:
        self.sim.process(self._arrivals(connections_per_second),
                         name="web-arrivals")

    def _arrivals(self, rate: float) -> Generator:
        while True:
            yield self.sim.timeout(float(self.rng.exponential(1.0 / rate)))
            self.generated += 1
            self.sim.process(self.router.connect(self.responses),
                             name="web-conn")
