"""The record database manager: DB2/IMS-DB stand-in.

One :class:`DatabaseManager` instance runs per system, all of them sharing
the same database pages on shared DASD.  Strict two-phase locking through
the global lock manager, buffer coherency through the buffer manager, and
write-ahead logging with group commit — the exact subsystem shape the
paper's Figure 2 draws (LOCKS + DATA BUFFERS per system, coordinated
through the Coupling Facility).

Execution API: ``execute(txn_id, reads, writes)`` runs the data-access
portion of one transaction and commits it.  DeadlockAbort propagates to
the caller (the transaction manager owns retry policy).
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Tuple

from ..cf.lock import LockMode
from ..config import DatabaseConfig
from ..hardware.cpu import SystemDown
from ..simkernel import Event, Simulator
from .buffermgr import PAGE_BYTES, BufferManager
from .lockmgr import DeadlockAbort, LockManager
from .logmgr import LogManager

__all__ = ["DatabaseManager"]

#: CPU spent undoing one update during transaction abort
UNDO_CPU_PER_PAGE = 40e-6


class DatabaseManager:
    """One system's database-manager instance."""

    def __init__(self, sim: Simulator, node, config: DatabaseConfig,
                 lockmgr: LockManager, bufmgr: BufferManager,
                 logmgr: LogManager, trace=None):
        self.sim = sim
        self.node = node
        self.config = config
        self.locks = lockmgr
        self.buffers = bufmgr
        self.log = logmgr
        self.trace = trace  # Tracer or None (zero-cost when disabled)
        self.alive = True
        self.commits = 0
        self.aborts = 0

    @property
    def system_name(self) -> str:
        return self.node.name

    # -- transaction execution ----------------------------------------------
    def execute(self, txn_id: object, reads: Iterable[object],
                writes: Iterable[object]) -> Generator:
        """Process step: data access + commit for one transaction.

        The caller provides page lists; application CPU is the caller's
        business (the transaction manager interleaves it).  Raises
        :class:`DeadlockAbort` — the caller must then call :meth:`abort`.
        """
        owner = (self.system_name, txn_id)
        reads = list(reads)
        writes = list(writes)
        write_set = set(writes)

        # database-call path length, burned in two lumps to keep the event
        # count linear in transactions rather than in database calls
        calls = len(reads) + len(writes)
        half_cpu = 0.5 * calls * self.config.db_call_cpu
        tr = self.trace

        if tr is None:
            # Untraced mainline, flattened: the two CPU lumps, the log
            # force, and the page externalization run in THIS generator
            # frame instead of through cpu.consume / commit / log.force /
            # commit_writes delegation (four frames entered and resumed on
            # every event of the hottest path in the simulator).  Event
            # schedule, float arithmetic, and statistics are identical to
            # the composed form — the traced branch below and
            # :meth:`commit` keep the composed original.
            sim = self.sim
            cpu = self.node.cpu
            buffers = self.buffers
            locks = self.locks
            log = self.log
            engines = cpu.engines
            if half_cpu > 0:  # cpu.consume(half_cpu), flattened
                req = None
                if not (cpu.collapse and engines.claim()):
                    req = engines.request()
                try:
                    if req is not None:
                        yield req
                    if cpu.offline:
                        raise SystemDown(cpu.name)
                    burn = half_cpu * cpu._inflation / cpu._speed
                    cpu.busy_seconds += burn
                    yield sim.timeout(burn)
                finally:
                    if req is None:
                        engines.unclaim()
                    else:
                        req.cancel()
            for page in reads:
                if page in write_set:
                    continue  # will be locked EXCL below
                self._check_alive()
                yield from locks.lock(owner, page, LockMode.SHR)
                # clean local hit: vector-bit test only, no generator
                if buffers.try_get_local(page) is None:
                    yield from buffers.get_page(page)
            for page in writes:
                self._check_alive()
                yield from locks.lock(owner, page, LockMode.EXCL)
                if buffers.try_get_local(page) is None:
                    yield from buffers.get_page(page)
                buffers.mark_dirty(page)
                log.log_update(owner, page)
            self._check_alive()
            if half_cpu > 0:  # cpu.consume(half_cpu), flattened
                req = None
                if not (cpu.collapse and engines.claim()):
                    req = engines.request()
                try:
                    if req is not None:
                        yield req
                    if cpu.offline:
                        raise SystemDown(cpu.name)
                    burn = half_cpu * cpu._inflation / cpu._speed
                    cpu.busy_seconds += burn
                    yield sim.timeout(burn)
                finally:
                    if req is None:
                        engines.unclaim()
                    else:
                        req.cancel()
            # -- commit(owner, writes), flattened ---------------------------
            self._check_alive()
            # log.force(): force CPU, then join the group commit
            force_cpu = self.config.log_force_cpu
            if force_cpu > 0:
                req = None
                if not (cpu.collapse and engines.claim()):
                    req = engines.request()
                try:
                    if req is not None:
                        yield req
                    if cpu.offline:
                        raise SystemDown(cpu.name)
                    burn = force_cpu * cpu._inflation / cpu._speed
                    cpu.busy_seconds += burn
                    yield sim.timeout(burn)
                finally:
                    if req is None:
                        engines.unclaim()
                    else:
                        req.cancel()
            ev = Event(sim)
            log._pending.append(ev)
            if not log._flushing:
                log._flushing = True
                sim.process(log._flush_loop(), name="log-flush")
            yield ev
            # buffers.commit_writes(writes): externalize changed pages
            pool = buffers._pool
            xes = buffers.xes
            if xes is not None and getattr(xes, "pair", None) is not None:
                # duplexed structure: the write must run the duplexed-write
                # protocol (mirror to the secondary), so take the
                # connection-level path instead of the flattened port call
                for page in writes:
                    buf = pool.get(page)
                    if buf is None or not buf.dirty:
                        continue
                    yield from xes.sync(
                        lambda p=page: xes.structure.write_and_invalidate(
                            xes.connector, p),
                        mirror=lambda s, c, p=page: s.write_and_invalidate(
                            c, p),
                        out_bytes=PAGE_BYTES,
                        data=True,
                        signal_wait=True,
                    )
                    buffers.pages_written += 1
                    buf.dirty = False
            elif xes is not None:
                cache = xes.structure
                conn = xes.connector
                sync = xes.port.sync
                for page in writes:
                    buf = pool.get(page)
                    if buf is None or not buf.dirty:
                        continue
                    yield from sync(
                        lambda p=page: cache.write_and_invalidate(conn, p),
                        out_bytes=PAGE_BYTES,
                        data=True,
                        signal_wait=True,
                    )
                    buffers.pages_written += 1
                    buf.dirty = False
            log.log_end(owner)
            yield from locks.unlock_all(owner)
            self.commits += 1
            return

        # traced variant: identical control flow with each lifecycle stage
        # wrapped in a span (lock / coherency / cpu / commit)
        yield from tr.traced("cpu", self.node.cpu.consume(half_cpu))
        for page in reads:
            if page in write_set:
                continue  # will be locked EXCL below
            self._check_alive()
            yield from tr.traced(
                "lock", self.locks.lock(owner, page, LockMode.SHR)
            )
            yield from tr.traced("coherency", self.buffers.get_page(page))
        for page in writes:
            self._check_alive()
            yield from tr.traced(
                "lock", self.locks.lock(owner, page, LockMode.EXCL)
            )
            yield from tr.traced("coherency", self.buffers.get_page(page))
            self.buffers.mark_dirty(page)
            self.log.log_update(owner, page)
        self._check_alive()
        yield from tr.traced("cpu", self.node.cpu.consume(half_cpu))
        yield from tr.traced("commit", self.commit(owner, writes))

    def _check_alive(self) -> None:
        """A task that survived its instance's death (frozen across an
        outage, revived by a restart) must not touch the fresh stack's
        shared state through stale connections."""
        if not self.alive or not self.node.alive:
            raise SystemDown(self.system_name)

    def commit(self, owner: object, writes: List[object]) -> Generator:
        """Force the log, externalize pages, release locks."""
        self._check_alive()
        yield from self.log.force()
        yield from self.buffers.commit_writes(writes)
        self.log.log_end(owner)
        yield from self.locks.unlock_all(owner)
        self.commits += 1

    def abort(self, txn_id: object) -> Generator:
        """Undo a transaction after a deadlock abort."""
        owner = (self.system_name, txn_id)
        touched = self.log.in_flight.get(owner, [])
        if touched:
            yield from self.node.cpu.consume(UNDO_CPU_PER_PAGE * len(touched))
            for page in touched:
                # undo is a local buffer operation; the page stays dirty
                # and is externalized by the next committer / castout
                if self.buffers.contains(page):
                    self.buffers.mark_dirty(page)
        self.log.log_end(owner)
        yield from self.locks.unlock_all(owner)
        self.aborts += 1

    def abandon(self, txn_id: object) -> None:
        """Clean up a transaction that died with the CF unreachable:
        software lock holds and log bookkeeping are dropped locally (no
        CF commands are possible)."""
        owner = (self.system_name, txn_id)
        self.log.log_end(owner)
        self.locks.abandon(owner)

    # -- failure ---------------------------------------------------------------
    def fail(self) -> Tuple[Dict[object, str], Dict[object, List[object]]]:
        """The hosting system died.

        Returns (retained locks, in-flight transactions) — the inputs to
        peer recovery.
        """
        self.alive = False
        snapshot = self.log.crash_snapshot()
        retained = self.locks.fail_instance()
        return retained, snapshot
