"""Transaction management: CICS-like regions + sysplex work routing.

Paper §2.3: work requests "can be executed on any system in the
configuration based on available processing capacity, instead of being
bound to a specific system due to data-to-processor affinity.  Normally,
work will execute on the system on which the request is received, but in
cases of over-utilization on a given node, work can be directed to other
less-utilized system nodes."

:class:`TransactionManager` is one region: bounded multiprogramming level,
deadlock-retry policy, response-time accounting.  :class:`SysplexRouter`
implements the routing policies compared in EXP-BAL: ``local`` (no
balancing), ``threshold`` (the paper's receive-locally-unless-overloaded),
and ``wlm`` (fully weighted distribution).  :class:`ListQueueRouter` is
the §3.3.3 alternative: a shared CF list work queue that every system
drains — used by EXP-LIST.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from ..cf.cache import CacheFullError
from ..cf.commands import CfRequestTimeout
from ..cf.facility import CfFailedError
from ..cf.list import ListEntry
from ..cf.structure import StructureFailedError
from ..config import OltpConfig, XcfConfig
from ..hardware.cpu import SystemDown
from ..hardware.links import LinkDownError
from ..mvs.wlm import WorkloadManager
from ..mvs.xes import XesConnection
from ..simkernel import MetricSet, Resource, Simulator
from .database import DatabaseManager
from .lockmgr import DeadlockAbort, RetainedLockReject

__all__ = ["TransactionManager", "SysplexRouter", "ListQueueRouter"]

MAX_RETRIES = 10
RETRY_BACKOFF = 2e-3


class TransactionManager:
    """One system's transaction-processing region."""

    def __init__(self, sim: Simulator, node, db: DatabaseManager,
                 config: OltpConfig, wlm: WorkloadManager,
                 metrics: MetricSet, rng: np.random.Generator,
                 max_tasks: int = 32, trace=None):
        # max_tasks is the region's multiprogramming level: admission
        # control that keeps lock contention from spiralling when the
        # system is pushed past saturation (work queues at the door,
        # holding no locks, instead of inside the lock manager)
        self.sim = sim
        self.node = node
        self.db = db
        self.config = config
        self.wlm = wlm
        self.metrics = metrics
        self.rng = rng
        self.trace = trace  # Tracer or None (zero-cost when disabled)
        self.tasks = Resource(sim, capacity=max_tasks)
        #: set by the operations console during a planned VARY OFFLINE:
        #: no new work is accepted while in-flight tasks drain
        self.quiesced = False
        self.completed = 0
        self.deadlock_retries = 0
        self.failed_txns = 0
        # per-completion bookkeeping is O(1) appends on pre-resolved
        # collectors — no name lookup on the commit path
        self._completed_counter = metrics.counter("txn.completed")
        self._submitted_counter = metrics.counter("txn.submitted")
        self._response_tally = metrics.tally("txn.response")
        self._node_response_tally = metrics.tally(f"txn.response.{node.name}")

    @property
    def available(self) -> bool:
        return self.node.alive and self.db.alive and not self.quiesced

    def submit(self, txn) -> None:
        """Accept a transaction for execution (spawns its task)."""
        self._submitted_counter.add()
        self.sim.process(self._run(txn), name=f"txn-{txn.txn_id}")

    def _fail(self, txn) -> None:
        self.failed_txns += 1
        self.metrics.counter("txn.failed").add()
        if txn.done is not None and not txn.done.triggered:
            txn.done.succeed(None)  # closed-loop terminal moves on

    def _run(self, txn) -> Generator:
        # collapse mode: a region below its MPL admits the task as a
        # scalar hold — no admission grant event; a full region queues
        # through a real request exactly as before
        tasks = self.tasks
        req = None
        if not (self.node.cpu.collapse and tasks.claim()):
            req = tasks.request()
        tr = self.trace
        try:
            if req is not None:
                yield req
            if tr is not None:
                # arrival → region task start: routing (incl. any function
                # shipping) plus admission queueing for a region task
                tr.record("dispatch", txn.arrival, self.sim.now,
                          txn.txn_id, self.node.name)
                tr.bind(txn.txn_id, self.node.name)
            app_half = 0.5 * self.config.app_cpu
            sim = self.sim
            cpu = self.node.cpu
            try:
                for attempt in range(MAX_RETRIES):
                    try:
                        # quiesced regions finish work already accepted;
                        # only dead systems/instances reject it
                        if not (self.node.alive and self.db.alive):
                            self._fail(txn)
                            return
                        if tr is None:
                            # cpu.consume(app_half) flattened into this
                            # frame (see DatabaseManager.execute): same
                            # events, same floats, no delegation
                            if app_half > 0:
                                engines = cpu.engines
                                creq = None
                                if not (cpu.collapse and engines.claim()):
                                    creq = engines.request()
                                try:
                                    if creq is not None:
                                        yield creq
                                    if cpu.offline:
                                        raise SystemDown(cpu.name)
                                    burn = (app_half * cpu._inflation
                                            / cpu._speed)
                                    cpu.busy_seconds += burn
                                    yield sim.timeout(burn)
                                finally:
                                    if creq is None:
                                        engines.unclaim()
                                    else:
                                        creq.cancel()
                        else:
                            yield from tr.traced(
                                "cpu", self.node.cpu.consume(app_half)
                            )
                        yield from self.db.execute(
                            txn.txn_id, txn.reads, txn.writes
                        )
                        if tr is None:
                            if app_half > 0:
                                engines = cpu.engines
                                creq = None
                                if not (cpu.collapse and engines.claim()):
                                    creq = engines.request()
                                try:
                                    if creq is not None:
                                        yield creq
                                    if cpu.offline:
                                        raise SystemDown(cpu.name)
                                    burn = (app_half * cpu._inflation
                                            / cpu._speed)
                                    cpu.busy_seconds += burn
                                    yield sim.timeout(burn)
                                finally:
                                    if creq is None:
                                        engines.unclaim()
                                    else:
                                        creq.cancel()
                        else:
                            yield from tr.traced(
                                "cpu", self.node.cpu.consume(app_half)
                            )
                        break
                    except DeadlockAbort:
                        self.deadlock_retries += 1
                        yield from self.db.abort(txn.txn_id)
                        yield self.sim.timeout(
                            float(self.rng.exponential(RETRY_BACKOFF))
                        )
                    except CacheFullError:
                        # castout has fallen behind and the CF rejected a
                        # changed-data write (GBP-full): abort, give the
                        # castout engine a long beat to drain, and retry
                        self.metrics.counter("txn.cache_full").add()
                        yield from self.db.abort(txn.txn_id)
                        yield self.sim.timeout(
                            float(self.rng.exponential(10 * RETRY_BACKOFF))
                        )
                    except RetainedLockReject:
                        # data protected by a failed peer's retained lock:
                        # the request is rejected until recovery completes
                        yield from self.db.abort(txn.txn_id)
                        self.metrics.counter("txn.lock_reject").add()
                        self._fail(txn)
                        return
                else:
                    self._fail(txn)
                    return
            except SystemDown:
                # the hosting system died under this task: its locks stay
                # with the instance and become retained at fail_instance —
                # peer recovery releases them (deliberately NOT abandoned
                # here, that would forfeit retained-lock data protection)
                self._fail(txn)
                return
            except (CfFailedError, StructureFailedError):
                # the CF (or this structure) died: no CF command can run,
                # so the software lock holds are dropped locally; the
                # structure rebuild reconstructs CF-side interest from the
                # surviving instances' state
                self.db.abandon(txn.txn_id)
                self._fail(txn)
                return
            except (LinkDownError, CfRequestTimeout):
                # the coupling path to the CF is gone (every link down,
                # or the redrive budget ran out): this transaction fails
                # and its software holds are dropped so peers proceed —
                # the structure itself is intact, nothing to rebuild
                self.db.abandon(txn.txn_id)
                self.metrics.counter("txn.link_fail").add()
                self._fail(txn)
                return
            rt = self.sim.now - txn.arrival
            self.completed += 1
            self._completed_counter.add()
            self._response_tally.record(rt)
            self._node_response_tally.record(rt)
            self.wlm.record_response(txn.service_class, rt)
            if tr is not None:
                tr.txn_complete(txn.txn_id, txn.arrival, rt)
            if txn.done is not None and not txn.done.triggered:
                txn.done.succeed(rt)
        finally:
            if tr is not None:
                tr.unbind()
            if req is None:
                tasks.unclaim()
            else:
                req.cancel()


class SysplexRouter:
    """Routes arriving work among the transaction managers."""

    def __init__(self, sim: Simulator, tms: List[TransactionManager],
                 wlm: WorkloadManager, xcf_config: XcfConfig,
                 policy: str = "threshold", threshold: float = 0.85,
                 trace=None, metrics: Optional[MetricSet] = None):
        if policy not in ("local", "threshold", "wlm"):
            raise ValueError(f"unknown routing policy {policy!r}")
        self.sim = sim
        self.tms = list(tms)
        self.wlm = wlm
        self.xcf_config = xcf_config
        self.policy = policy
        self.threshold = threshold
        self.trace = trace  # Tracer or None (zero-cost when disabled)
        self.shipped = 0
        #: arrivals dropped before any region accepted them (total outage,
        #: shipper death): explicit so transaction conservation is checkable
        self.lost = 0
        self._lost_counter = (
            metrics.counter("txn.lost") if metrics is not None else None
        )

    def _lose(self) -> None:
        self.lost += 1
        if self._lost_counter is not None:
            self._lost_counter.add()

    def add_manager(self, tm: TransactionManager) -> None:
        """A new system joined the sysplex (granular growth, §2.4)."""
        self.tms.append(tm)

    def _alive(self) -> List[TransactionManager]:
        return [tm for tm in self.tms if tm.available]

    def route(self, txn) -> None:
        """Deliver one arriving transaction to a system."""
        alive = self._alive()
        if not alive:
            self._lose()  # total outage: the arriving request is lost
            return
        home: Optional[TransactionManager] = None
        if 0 <= txn.home < len(self.tms) and self.tms[txn.home].available:
            home = self.tms[txn.home]

        target = self._pick(home, alive)
        if home is not None and target is not home:
            # function-shipping the request costs an XCF message
            self.shipped += 1
            self.sim.process(self._ship(home, target, txn), name="ship")
        else:
            target.submit(txn)

    def _pick(self, home, alive) -> TransactionManager:
        if self.policy == "local" and home is not None:
            return home
        if self.policy == "wlm" or home is None:
            node = self.wlm.select_system([tm.node for tm in alive])
            return next(tm for tm in alive if tm.node is node)
        # threshold policy: stay local unless over-utilized
        if self.wlm.utilization(home.node.name) <= self.threshold:
            return home
        node = self.wlm.select_system([tm.node for tm in alive])
        return next(tm for tm in alive if tm.node is node)

    def _ship(self, src: TransactionManager, dst: TransactionManager, txn):
        try:
            yield from src.node.cpu.consume(self.xcf_config.message_cpu)
            yield self.sim.timeout(self.xcf_config.message_latency)
            if dst.available:
                yield from dst.node.cpu.consume(self.xcf_config.message_cpu)
                dst.submit(txn)
            else:
                alive = self._alive()
                if alive:
                    alive[0].submit(txn)
                else:
                    self._lose()  # everyone died while the request shipped
        except SystemDown:
            self._lose()  # the shipping system died mid-transfer


class ListQueueRouter:
    """Workload distribution through a shared CF list work queue (§3.3.3).

    Arrivals are pushed onto a CF list by the receiving system; every
    system runs a server loop that pops work when present, using the
    list-transition vector bit (polled locally, set by the CF signal at no
    CPU cost) to avoid hammering the CF while idle.
    """

    def __init__(self, sim: Simulator, tms: List[TransactionManager],
                 connections: Dict[str, XesConnection],
                 header: int = 0, poll_interval: float = 1e-3):
        self.sim = sim
        self.tms = list(tms)
        self.connections = connections
        self.header = header
        self.poll_interval = poll_interval
        self.pushed = 0
        self._start_servers()

    def _start_servers(self) -> None:
        for tm in self.tms:
            xes = self.connections[tm.node.name]
            # register on both instances of a duplexed structure: after a
            # switch the promoted secondary must keep signalling transitions
            for st, conn in xes.instances():
                st.register_monitor(conn, self.header, 0)
            self.sim.process(self._server(tm, xes), name=f"listq-{tm.node.name}")

    def route(self, txn) -> None:
        """Push arriving work onto the shared queue (from its home system)."""
        alive = [tm for tm in self.tms if tm.available]
        if not alive:
            return
        entry_tm = (
            self.tms[txn.home]
            if 0 <= txn.home < len(self.tms) and self.tms[txn.home].available
            else alive[0]
        )
        xes = self.connections[entry_tm.node.name]
        self.sim.process(self._push(xes, txn), name="listq-push")

    def _push(self, xes: XesConnection, txn):
        st, conn = xes.structure, xes.connector
        # one entry object pushed to both instances keeps entry ids equal
        entry = ListEntry(data=txn)
        try:
            yield from xes.sync(
                lambda: st.push(conn, self.header, entry),
                mirror=lambda s, c: s.push(c, self.header, entry),
                out_bytes=256,
            )
            self.pushed += 1
        except (SystemDown, CfFailedError, StructureFailedError):
            pass

    def _server(self, tm: TransactionManager, xes: XesConnection):
        st, conn = xes.structure, xes.connector
        vector = st.vector_of(conn)
        try:
            while tm.available:
                if vector.test(0):
                    entry = yield from xes.sync(
                        lambda: st.pop(conn, self.header),
                        mirror=lambda s, c: s.pop(c, self.header),
                        in_bytes=256,
                    )
                    if entry is None:
                        st.clear_monitor_bit(conn, 0)
                        if st.length(self.header):
                            vector.set_valid(0)
                        continue
                    tm.submit(entry.data)
                else:
                    yield self.sim.timeout(self.poll_interval)
        except (SystemDown, CfFailedError, StructureFailedError):
            return  # this system left the sysplex; peers keep serving
