"""JES-style batch: a multi-access spool on the CF list structure.

Paper §5.1: "Several MVS base system components including JES2, RACF, and
XCF are exploiting the Coupling Facility."  JES2's exploitation is the
**checkpoint structure**: the shared job queue every member's initiators
select work from.  Modeled here:

* a shared job queue in a CF list structure — one header per job class,
  entries queued in priority (keyed) order;
* an *executing* header per system: taking a job is an **atomic move**
  from the class queue to the executor's header (the §3.3.3 primitive),
  so a job can never be started twice and never lost;
* **initiators** on every system drain the classes they serve;
* failure recovery: when a system dies, the jobs parked on its executing
  header are moved back to their class queues and run elsewhere —
  exactly once per job overall (completion is the delete of the parked
  entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

import numpy as np

from ..cf.list import ListEntry
from ..mvs.xes import XesConnection
from ..simkernel import Simulator, Tally

__all__ = ["BatchJob", "JesSpool", "JesMember"]


@dataclass
class BatchJob:
    """One batch job: CPU and I/O demand, a class, and a priority."""

    job_id: int
    job_class: str = "A"
    priority: int = 8  # 0 = most urgent (collates first)
    cpu_seconds: float = 0.05
    io_count: int = 4
    submitted_at: float = 0.0
    runs: int = 0  # how many times execution started (restarts count)


class JesSpool:
    """The shared job queue: class headers + per-system executing headers.

    Header layout inside the list structure: classes first, then one
    executing header per member slot.
    """

    CLASSES = ("A", "B")

    def __init__(self, n_members: int):
        self.n_members = n_members
        self._class_header = {c: i for i, c in enumerate(self.CLASSES)}
        self._exec_base = len(self.CLASSES)
        self.submitted = 0
        self.completed = 0
        self.requeued = 0
        self.turnaround = Tally("jes.turnaround")

    @property
    def n_headers(self) -> int:
        return self._exec_base + self.n_members

    def class_header(self, job_class: str) -> int:
        return self._class_header[job_class]

    def exec_header(self, member_index: int) -> int:
        return self._exec_base + member_index


class JesMember:
    """One system's JES instance: submission + initiators."""

    def __init__(self, sim: Simulator, node, farm, spool: JesSpool,
                 xes: XesConnection, member_index: int,
                 initiators: Dict[str, int],
                 rng: np.random.Generator):
        self.sim = sim
        self.node = node
        self.farm = farm
        self.spool = spool
        self.xes = xes
        self.member_index = member_index
        self.rng = rng
        self.jobs_run = 0
        self._active = True
        for job_class, count in initiators.items():
            for i in range(count):
                sim.process(self._initiator(job_class),
                            name=f"init-{node.name}-{job_class}{i}")

    # -- submission ----------------------------------------------------------
    def submit(self, job: BatchJob) -> Generator:
        """Process step: place a job on its class queue (one CF command)."""
        st, conn = self.xes.structure, self.xes.connector
        job.submitted_at = self.sim.now
        header = self.spool.class_header(job.job_class)
        entry = ListEntry(key=(job.priority, job.job_id), data=job)
        yield from self.xes.sync(
            lambda: st.push(conn, header, entry, where="keyed"),
            mirror=lambda s, c: s.push(c, header, entry, where="keyed"),
            out_bytes=256,
        )
        self.spool.submitted += 1

    # -- initiators -------------------------------------------------------------
    def _initiator(self, job_class: str) -> Generator:
        st, conn = self.xes.structure, self.xes.connector
        header = self.spool.class_header(job_class)
        parked = self.spool.exec_header(self.member_index)
        try:
            while self._active and self.node.alive:
                # atomically take the highest-priority job: read the head,
                # move it to our executing header in one CF command
                def take_on(s, c):
                    entries = s.read(header)
                    if not entries:
                        return None
                    entry = entries[0]
                    s.move(c, header, parked, entry.entry_id)
                    return entry

                entry = yield from self.xes.sync(
                    lambda: take_on(st, conn), mirror=take_on, in_bytes=256
                )
                if entry is None:
                    yield self.sim.timeout(0.01)  # idle poll
                    continue
                job: BatchJob = entry.data
                job.runs += 1
                yield from self._execute(job)
                # completion = deleting the parked entry
                yield from self.xes.sync(
                    lambda e=entry: st.delete(conn, parked, e.entry_id),
                    mirror=lambda s, c, e=entry: s.delete(c, parked,
                                                          e.entry_id),
                )
                self.spool.completed += 1
                self.spool.turnaround.record(self.sim.now - job.submitted_at)
                self.jobs_run += 1
        except Exception:
            return  # the system died; parked work is recovered by a peer

    def _execute(self, job: BatchJob) -> Generator:
        # batch runs beneath online work (WLM discretionary priority)
        remaining = job.cpu_seconds
        while remaining > 0:
            burn = min(0.002, remaining)
            yield from self.node.cpu.consume(burn, priority=5)
            remaining -= burn
        for _ in range(job.io_count):
            page = int(self.rng.integers(1_000_000))
            yield from self.farm.read_page(page)

    # -- failure recovery -----------------------------------------------------------
    def recover_member(self, dead_index: int) -> Generator:
        """Process step: requeue a dead member's parked jobs (peer runs
        this).  Each job goes back to its class queue and will be taken
        by some surviving initiator."""
        st, conn = self.xes.structure, self.xes.connector
        parked = self.spool.exec_header(dead_index)

        def requeue_on(s, c):
            n = 0
            for entry in s.read(parked):
                job: BatchJob = entry.data
                s.move(c, parked, self.spool.class_header(job.job_class),
                       entry.entry_id, where="keyed")
                n += 1
            return n

        n = yield from self.xes.sync(
            lambda: requeue_on(st, conn), mirror=requeue_on,
            service_factor=2.0
        )
        self.spool.requeued += n
        return n

    def stop(self) -> None:
        self._active = False
