"""Write-ahead log manager with group commit.

Each database-manager instance owns a private log on its own DASD device.
Commit forces the log; concurrent committers share one I/O (group
commit), which is what keeps the log device off the critical path at
Parallel-Sysplex transaction rates.  The log also remembers in-flight
transactions so peer recovery can compute its redo/undo work after a
system failure.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from ..config import DatabaseConfig
from ..hardware.dasd import DasdDevice
from ..simkernel import Event, Simulator

__all__ = ["LogManager"]


class LogManager:
    """One instance's recovery log."""

    def __init__(self, sim: Simulator, node, config: DatabaseConfig,
                 device: DasdDevice):
        self.sim = sim
        self.node = node
        self.config = config
        self.device = device
        self.next_lsn = 1
        self._pending: List[Event] = []
        self._flushing = False
        #: transactions with log records not yet ended (for recovery)
        self.in_flight: Dict[object, List[object]] = {}  # txn -> touched pages
        self.forces = 0
        self.records = 0

    # -- record writing -------------------------------------------------------
    def log_update(self, txn: object, page: object) -> None:
        """Buffer an update record (redo/undo) — memory only until force."""
        self.records += 1
        self.in_flight.setdefault(txn, []).append(page)

    def log_end(self, txn: object) -> None:
        """The transaction committed or aborted; its records are complete."""
        self.in_flight.pop(txn, None)

    # -- group commit --------------------------------------------------------------
    def force(self) -> Generator:
        """Process step: harden everything logged so far (group commit)."""
        yield from self.node.cpu.consume(self.config.log_force_cpu)
        ev = Event(self.sim)
        self._pending.append(ev)
        if not self._flushing:
            self._flushing = True
            self.sim.process(self._flush_loop(), name="log-flush")
        yield ev

    def _flush_loop(self):
        while self._pending:
            batch, self._pending = self._pending, []
            yield from self.device.io()
            self.forces += 1
            for ev in batch:
                if not ev.triggered:
                    ev.succeed()
        self._flushing = False

    # -- recovery support -------------------------------------------------------------
    def crash_snapshot(self) -> Dict[object, List[object]]:
        """What a peer reading this log after a crash would find."""
        return {txn: list(pages) for txn, pages in self.in_flight.items()}
