"""Peer recovery of a failed database-manager instance.

Paper §2.5: "Peer instances of a failing subsystem(s) executing on
remaining healthy systems can take over recovery responsibility for
resources held by the failing instance."  The recovery reads the failed
instance's log from shared DASD, redoes/undoes the in-flight work, reads
the persistent lock records out of the CF lock structure, and finally
releases the retained locks — at which point blocked work resumes.

The same module implements what an ARM-driven *restart* of the instance
runs on its new system; peer recovery and restart recovery share the
mechanism (who runs it differs).
"""

from __future__ import annotations

from typing import Generator, List

from ..config import ArmConfig
from ..simkernel import Simulator
from .database import DatabaseManager
from .lockmgr import LockSpace

__all__ = ["PeerRecovery"]


class PeerRecovery:
    """Coordinates takeover recovery for failed instances."""

    def __init__(self, sim: Simulator, config: ArmConfig, space: LockSpace):
        self.sim = sim
        self.config = config
        self.space = space
        self.recoveries: List[tuple] = []

    def recover(self, failed: DatabaseManager,
                recoverer: DatabaseManager) -> Generator:
        """Process step: full takeover recovery, run on the recoverer.

        Returns the number of retained locks released.
        """
        retained, in_flight = failed.fail() if failed.alive else (
            # fail() may already have run (partition hook ordering)
            {r: m for r, (s, m) in self.space.retained.items()
             if s == failed.system_name},
            failed.log.crash_snapshot(),
        )
        node = recoverer.node

        # 1. read the failed instance's log from shared DASD + replay
        yield from failed.log.device.io()
        yield from node.cpu.consume(self.config.log_replay_time * 0.1)
        yield self.sim.timeout(self.config.log_replay_time)

        # 2. read persistent lock records from the CF (one batched command)
        conn_id = failed.locks.xes.connector.conn_id
        structure = failed.locks.structure
        if not structure.lost:
            records = yield from recoverer.locks.xes.sync(
                lambda: structure.records_of(conn_id),
                service_factor=max(1.0, 0.25 * max(1, len(retained))),
            )
        else:  # pragma: no cover - CF died too; log is the only source
            records = {page: {} for page in retained}

        # 3. redo/undo each in-flight transaction's pages
        n_pages = sum(len(p) for p in in_flight.values())
        if n_pages:
            yield from node.cpu.consume(self.config.lock_recovery_each * n_pages)
        for owner in in_flight:
            failed.log.log_end(owner)

        # 4. release the retained locks and purge the CF records
        if not structure.lost:
            yield from recoverer.locks.xes.sync(
                lambda: structure.purge_records(conn_id),
                mirror=lambda s, c: s.purge_records(conn_id),
                service_factor=max(1.0, 0.25 * max(1, len(records))),
            )
        released = self.space.clear_retained(failed.system_name)
        self.recoveries.append((self.sim.now, failed.system_name, len(released)))
        return len(released)
