"""VTAM generic resources: single network image for the sysplex.

Paper §5.3: users "simply logon to 'CICS' without having to specify or be
cognizant of which system their session will be dynamically bound" —
session binds are distributed for balance using WLM recommendations, with
the generic-resource affinity table kept in a CF **list structure** (one
CF command per logon records the binding).

EXP-GR compares this against the pre-sysplex alternative: every user
hard-wired to a specific application instance.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional


from ..cf.list import ListEntry
from ..mvs.wlm import WorkloadManager
from ..mvs.xes import XesConnection
from ..simkernel import Simulator

__all__ = ["GenericResources"]


class GenericResources:
    """The sysplex-wide generic-resource name (e.g. the name "CICS")."""

    def __init__(self, sim: Simulator, name: str, wlm: WorkloadManager,
                 nodes: List, connections: Dict[str, XesConnection],
                 affinity_header: int = 1):
        self.sim = sim
        self.name = name
        self.wlm = wlm
        self.nodes = list(nodes)
        self.connections = connections
        self.affinity_header = affinity_header
        #: user -> (system name, list entry id)
        self.sessions: Dict[object, tuple] = {}
        self.binds = 0

    def logon(self, user: object, entry_node=None) -> Generator:
        """Process step: bind a session; returns the chosen SystemNode.

        ``entry_node`` is the system whose VTAM received the logon (any —
        single image).  The bind is recorded in the CF list structure.
        """
        live = [n for n in self.nodes if n.alive]
        if not live:
            raise RuntimeError("no system available for session bind")
        if entry_node is None or not entry_node.alive:
            entry_node = live[0]
        target = self.wlm.select_system(live)
        xes = self.connections[entry_node.name]
        st, conn = xes.structure, xes.connector
        entry = ListEntry(key=str(user), data={"user": user, "sys": target.name})
        yield from xes.sync(
            lambda: st.push(conn, self.affinity_header, entry, where="keyed"),
            mirror=lambda s, c: s.push(c, self.affinity_header, entry,
                                       where="keyed"),
            out_bytes=128,
        )
        self.sessions[user] = (target.name, entry.entry_id)
        self.binds += 1
        return target

    def logoff(self, user: object, entry_node=None) -> Generator:
        """Process step: drop a session binding."""
        session = self.sessions.pop(user, None)
        if session is None:
            return
        _sys, entry_id = session
        live = [n for n in self.nodes if n.alive]
        if not live:
            return
        node = entry_node if entry_node is not None and entry_node.alive else live[0]
        xes = self.connections[node.name]
        st, conn = xes.structure, xes.connector
        yield from xes.sync(
            lambda: st.delete(conn, self.affinity_header, entry_id),
            mirror=lambda s, c: s.delete(c, self.affinity_header, entry_id),
        )

    def system_of(self, user: object) -> Optional[str]:
        session = self.sessions.get(user)
        return session[0] if session else None

    def rebind_orphans(self, failed_name: str) -> List[object]:
        """Sessions bound to a failed system: they re-logon elsewhere
        (new work is "redirected to other data-sharing instances", §2.5)."""
        orphans = [u for u, (s, _e) in self.sessions.items() if s == failed_name]
        for user in orphans:
            self.sessions.pop(user, None)
        return orphans

    def session_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {n.name: 0 for n in self.nodes}
        for _user, (sys_name, _e) in self.sessions.items():
            counts[sys_name] = counts.get(sys_name, 0) + 1
        return counts

    def balance_index(self) -> float:
        """max/mean session count across live systems (1.0 = perfect)."""
        counts = [c for name, c in self.session_counts().items()
                  if any(n.name == name and n.alive for n in self.nodes)]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0
