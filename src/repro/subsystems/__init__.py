"""Exploiting subsystems: lock manager (IRLM), buffer manager, log manager,
database manager (DB2/IMS-DB), transaction manager (CICS), VTAM generic
resources, and peer recovery (paper §5)."""

from .buffermgr import BufferManager, CastoutEngine
from .database import DatabaseManager
from .jes import BatchJob, JesMember, JesSpool
from .lockmgr import DeadlockAbort, DeadlockDetector, LockManager, LockSpace
from .logmgr import LogManager
from .recovery import PeerRecovery
from .tcpip import DnsRoundRobin, SysplexDistributor, TcpStack, WebConfig, WebWorkload
from .txn import ListQueueRouter, SysplexRouter, TransactionManager
from .vsam import VsamCatalog, VsamDataset, VsamRls
from .vtam import GenericResources

__all__ = [
    "BatchJob",
    "BufferManager",
    "CastoutEngine",
    "DatabaseManager",
    "DeadlockAbort",
    "DeadlockDetector",
    "DnsRoundRobin",
    "GenericResources",
    "JesMember",
    "JesSpool",
    "ListQueueRouter",
    "LockManager",
    "LockSpace",
    "LogManager",
    "PeerRecovery",
    "SysplexDistributor",
    "SysplexRouter",
    "TcpStack",
    "TransactionManager",
    "WebConfig",
    "WebWorkload",
    "VsamCatalog",
    "VsamDataset",
    "VsamRls",
]
