"""Database buffer manager over the CF cache structure.

The paper's §3.3.2 walk-through, implemented end to end:

* Bringing a page into a local buffer **registers interest** with the CF
  (one sync command), tying the buffer slot to a local-vector bit.
* Re-using a cached page costs only the **local bit test** (the new CPU
  instruction — no CF trip).  If the bit was flipped by a
  cross-invalidate, the manager re-registers and refreshes, ideally from
  the CF's global cache ("high-speed local buffer refresh") and only
  otherwise from DASD.
* Committing updates **writes the changed page to the CF and
  cross-invalidates** peers in one CPU-synchronous command whose
  completion covers signal delivery.
* A **castout engine** drains changed blocks from the CF to DASD in the
  background (the CF is a store-in second-level cache, not the home
  location).

In non-data-sharing mode (the paper's single-system base case) the same
manager runs with no CF connection: pure local LRU pool plus a deferred
writer, which is what makes the §4 "cost of data sharing" comparison
apples-to-apples.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, List, Optional

from ..cf.cache import CacheStructure
from ..config import DatabaseConfig
from ..hardware.dasd import DasdFarm
from ..mvs.xes import XesConnection
from ..simkernel import Simulator

__all__ = ["BufferManager", "CastoutEngine"]

PAGE_BYTES = 4096


class _Buffer:
    __slots__ = ("page", "slot", "dirty")

    def __init__(self, page: object, slot: int):
        self.page = page
        self.slot = slot
        self.dirty = False


class BufferManager:
    """One database-manager instance's local buffer pool."""

    def __init__(self, sim: Simulator, node, config: DatabaseConfig,
                 farm: DasdFarm, xes: Optional[XesConnection] = None,
                 trace=None):
        self.sim = sim
        self.node = node
        self.config = config
        self.farm = farm
        self.xes = xes  # None => non-data-sharing
        self.trace = trace  # Tracer or None (zero-cost when disabled)
        self._pool: "OrderedDict[object, _Buffer]" = OrderedDict()
        self._free_slots: List[int] = list(range(config.buffer_pages))
        # statistics
        self.local_hits = 0
        self.coherency_misses = 0
        self.cf_refreshes = 0
        self.dasd_reads = 0
        self.pages_written = 0

    @property
    def data_sharing(self) -> bool:
        return self.xes is not None

    @property
    def cache(self) -> Optional[CacheStructure]:
        return self.xes.structure if self.xes else None  # type: ignore

    # -- read path -----------------------------------------------------------
    def try_get_local(self, page: object) -> Optional[str]:
        """Plain-call fast path: ``"local"`` iff ``page`` is a clean local
        hit, else ``None`` with **no side effects** — the caller falls back
        to :meth:`get_page`, which redoes the lookup identically.

        A local hit costs only the vector-bit test (the paper's new CPU
        instruction) and touches no event machinery, so callers on the
        transaction inner loop skip building a generator for the common
        case entirely.
        """
        buf = self._pool.get(page)
        if buf is None:
            return None
        xes = self.xes
        if xes is None:
            self._pool.move_to_end(page)
            self.local_hits += 1
            return "local"
        if not xes.connector.active:
            return None  # let get_page raise SystemDown as before
        if xes.structure.vector_of(xes.connector).test(buf.slot):
            self._pool.move_to_end(page)
            self.local_hits += 1
            return "local"
        return None  # cross-invalidated: get_page pays the refresh

    def get_page(self, page: object) -> Generator:
        """Process step: make ``page`` current in a local buffer.

        The caller must already hold a lock covering the page.  Returns
        'local' | 'cf' | 'dasd' describing where the data came from.
        """
        if self.data_sharing and not self.xes.connector.active:
            from ..hardware.cpu import SystemDown

            raise SystemDown(self.node.name)
        buf = self._pool.get(page)
        if buf is not None:
            self._pool.move_to_end(page)
            if not self.data_sharing:
                self.local_hits += 1
                return "local"
            # coherency check: local vector bit test, no CF access
            vector = self.cache.vector_of(self.xes.connector)
            if vector.test(buf.slot):
                self.local_hits += 1
                return "local"
            # cross-invalidated since we last touched it
            self.coherency_misses += 1
            source = yield from self._register_and_fill(page, buf.slot, None)
            return source

        # true miss: steal the LRU buffer
        buf, old_name = self._allocate(page)
        if not self.data_sharing:
            tr = self.trace
            if tr is None:
                yield from self.farm.read_page(page)
            else:
                yield from tr.traced("io", self.farm.read_page(page))
            self.dasd_reads += 1
            return "dasd"
        source = yield from self._register_and_fill(page, buf.slot, old_name)
        return source

    def _allocate(self, page: object):
        """Find a slot for ``page``; returns (buffer, stolen_page_or_None)."""
        old_name = None
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            victim_page, victim = self._pool.popitem(last=False)
            if victim.dirty:
                # with force-at-commit this cannot happen in data-sharing
                # mode; in non-sharing mode the deferred writer owns dirty
                # pages, so push it back and steal the next-oldest clean one
                self._pool[victim_page] = victim
                self._pool.move_to_end(victim_page, last=False)
                clean_page = next(
                    (p for p, b in self._pool.items() if not b.dirty), None
                )
                if clean_page is None:
                    # everything dirty: temporarily extend the pool
                    slot = self.config.buffer_pages + len(self._pool)
                    buf = _Buffer(page, slot)
                    self._pool[page] = buf
                    return buf, None
                victim = self._pool.pop(clean_page)
                victim_page = clean_page
            slot = victim.slot
            old_name = victim_page if self.data_sharing else None
        buf = _Buffer(page, slot)
        self._pool[page] = buf
        return buf, old_name

    def _register_and_fill(self, page: object, slot: int,
                           buf_old_name: Optional[object]) -> Generator:
        """One CF command: (name-replacement) registration + optional read."""
        cache, conn = self.cache, self.xes.connector
        old = buf_old_name

        def fn():
            if old is not None:
                cache.unregister(conn, old)
            return cache.register_and_read(conn, page, slot)

        # duplexing: registration mutates the directory, so the secondary
        # must see it too (the shared vector bit is only set once)
        def fn_mirror(s, c):
            if old is not None:
                s.unregister(c, old)
            s.register_and_read(c, page, slot)

        # the response carries the 4K block only on a CF hit
        will_hit = cache.has_data(page)
        status, _version = yield from self.xes.sync(
            fn, mirror=fn_mirror,
            in_bytes=PAGE_BYTES if will_hit else 64, data=will_hit
        )
        if status == "hit":
            self.cf_refreshes += 1
            return "cf"
        tr = self.trace
        if tr is None:
            yield from self.farm.read_page(page)
        else:
            yield from tr.traced("io", self.farm.read_page(page))
        self.dasd_reads += 1
        return "dasd"

    # -- write path ------------------------------------------------------------
    def mark_dirty(self, page: object) -> None:
        """Record a local update (the caller holds an EXCL lock)."""
        buf = self._pool.get(page)
        if buf is None:
            raise KeyError(f"page {page!r} not in pool — read before write")
        buf.dirty = True
        self._pool.move_to_end(page)

    def commit_writes(self, pages) -> Generator:
        """Process step: externalize a transaction's changed pages.

        Data sharing: write each page to the CF with cross-invalidation,
        CPU-synchronously (paper: the updater can "release its
        serialization on the shared data block" right after).  Non-sharing:
        nothing synchronous — the deferred writer will flush.
        """
        for page in pages:
            buf = self._pool.get(page)
            if buf is None or not buf.dirty:
                continue
            if self.data_sharing:
                cache, conn = self.cache, self.xes.connector
                yield from self.xes.sync(
                    lambda p=page: cache.write_and_invalidate(conn, p),
                    mirror=lambda s, c, p=page: s.write_and_invalidate(c, p),
                    out_bytes=PAGE_BYTES,
                    data=True,
                    signal_wait=True,
                )
                self.pages_written += 1
            buf.dirty = False if self.data_sharing else True

    def dirty_pages(self) -> List[object]:
        return [p for p, b in self._pool.items() if b.dirty]

    def flush_deferred(self, limit: int = 64) -> Generator:
        """Process step: non-sharing deferred write of dirty pages."""
        flushed = 0
        for page in self.dirty_pages():
            if flushed >= limit:
                break
            buf = self._pool.get(page)
            if buf is None or not buf.dirty:
                continue
            buf.dirty = False
            yield from self.farm.write_page(page, priority=5)
            self.pages_written += 1
            flushed += 1
        return flushed

    def prewarm(self, pages) -> int:
        """Seed the pool with ``pages`` at zero simulated cost.

        Benchmark setup only: stands in for the hours of production running
        that precede any steady-state measurement.  Registers interest in
        the CF directory exactly as a costed read would.
        """
        pool = self._pool
        free = self._free_slots
        pairs = []
        for page in pages:
            if not free or page in pool:
                continue
            slot = free.pop()
            pool[page] = _Buffer(page, slot)
            pairs.append((page, slot))
        if pairs and self.data_sharing:
            # bulk registration: same final CF state and statistics as one
            # register_and_read per page, minus the per-call overhead
            # (applied to both instances of a duplexed structure)
            for structure, conn in self.xes.instances():
                structure.prewarm_many(conn, pairs)
        return len(pairs)

    def contains(self, page: object) -> bool:
        return page in self._pool

    def is_valid(self, page: object) -> bool:
        """Local coherency state of a pooled page (diagnostic)."""
        buf = self._pool.get(page)
        if buf is None:
            return False
        if not self.data_sharing:
            return True
        return self.cache.vector_of(self.xes.connector).test(buf.slot)


class CastoutEngine:
    """Background drain of changed CF blocks to DASD (castout ownership)."""

    def __init__(self, sim: Simulator, xes: XesConnection, farm: DasdFarm,
                 interval: float = 0.05, batch: int = 64):
        self.sim = sim
        self.xes = xes
        self.farm = farm
        self.interval = interval
        self.batch = batch
        self.active = True
        self.pages_cast = 0
        self._proc = sim.process(self._loop(), name="castout")

    def stop(self) -> None:
        self.active = False

    def _loop(self):
        try:
            yield from self._drain_loop()
        except Exception:
            pass  # hosting system or CF died: a peer takes over
        finally:
            # a returned loop is a dead engine either way — ``active``
            # False is how recovery paths know a new drainer is needed
            self.active = False

    def _drain_loop(self):
        """Drain in castout-class batches: one CF read command fetches up
        to ``batch`` changed blocks (DB2 castout reads are multi-page),
        the DASD writes overlap across devices, and one command resets
        the changed bits — so per-page CPU stays in the microseconds."""
        backlog = False
        while self.active:
            if not backlog:
                yield self.sim.timeout(self.interval)
            if not self.active or not self.xes.operational:
                return
            if not self.xes.node.alive:
                return
            # re-resolve each round: a duplex switch rebinds the
            # connection's structure in place mid-run
            cache = self.xes.structure
            names = cache.changed_blocks(self.batch)
            # keep draining back-to-back while a backlog exists; idle on
            # the interval only when caught up
            backlog = len(names) >= self.batch
            if not names:
                continue

            def read_batch():
                return {n: cache.castout(n) for n in names}

            versions = yield from self.xes.async_(
                read_batch,
                in_bytes=PAGE_BYTES * len(names),
                data=True,
                service_factor=max(1.0, 0.25 * len(names)),
            )
            writes = [
                self.sim.process(
                    self.farm.write_page(n, priority=5), name="castout-io"
                )
                for n, v in versions.items()
                if v is not None
            ]
            if writes:
                yield self.sim.all_of(writes)

            def complete_batch():
                for n, v in versions.items():
                    if v is not None:
                        cache.castout_complete(n, v)

            def complete_batch_mirror(s, c):
                for n, v in versions.items():
                    if v is not None:
                        s.castout_complete(n, v)

            yield from self.xes.async_(
                complete_batch,
                mirror=complete_batch_mirror,
                service_factor=max(1.0, 0.25 * len(names)),
            )
            self.pages_cast += sum(1 for v in versions.values() if v is not None)
