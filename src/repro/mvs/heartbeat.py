"""System status monitoring and fail-stop enforcement (SFM).

Paper §3.2, third service: "processor heartbeat monitoring ... functions
are also provided to automatically terminate a failed processor and
disconnect the processor from its I/O devices.  This enables other
multi-system components to be designed with a 'fail-stop' strategy."

Each system writes a status timestamp into the couple data set on a fixed
interval; a detector sweep declares a system *status-missing* after the
configured number of missed updates, then **fences** it: cuts its fabric
endpoints, breaks any couple-data-set reserve it held, marks the node
fenced, partitions its XCF members out, and finally invokes the
partition hooks (ARM, peer recovery, workload redistribution).

The fencing step is what makes a flaky system safe: a node that "appears
faulty because of the heartbeat function and then resumes processing"
finds itself cut off rather than corrupting shared state.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..config import XcfConfig
from ..hardware.system import SystemNode
from ..simkernel import Simulator
from .cds import CoupleDataSet
from .xcf import XcfGroupServices

__all__ = ["SysplexMonitor"]


class SysplexMonitor:
    """Heartbeat writer per system + sysplex-wide failure detector."""

    def __init__(self, sim: Simulator, config: XcfConfig, cds: CoupleDataSet,
                 xcf: XcfGroupServices):
        self.sim = sim
        self.config = config
        self.cds = cds
        self.xcf = xcf
        self.nodes: List[SystemNode] = []
        self._partition_hooks: List[Callable[[SystemNode], None]] = []
        self._rejoin_hooks: List[Callable[[SystemNode], None]] = []
        #: systems currently considered in the sysplex by the detector
        self.in_sysplex: Dict[str, bool] = {}
        self.detections = 0
        self.detection_log: List[tuple] = []
        self._detector_started = False

    # -- wiring ----------------------------------------------------------------
    def on_partition(self, hook: Callable[[SystemNode], None]) -> None:
        """Called after a system has been fenced and partitioned out."""
        self._partition_hooks.append(hook)

    def on_rejoin(self, hook: Callable[[SystemNode], None]) -> None:
        self._rejoin_hooks.append(hook)

    def add_system(self, node: SystemNode) -> None:
        """Start heartbeating for a (newly active) system."""
        if node not in self.nodes:
            self.nodes.append(node)
        self.in_sysplex[node.name] = True
        self.sim.process(self._heartbeat_loop(node), name=f"hb-{node.name}")
        node.on_restart(self._system_restarted)
        if not self._detector_started:
            self._detector_started = True
            self.sim.process(self._detector_loop(), name="sfm-detector")

    # -- heartbeat writer ----------------------------------------------------------
    def _heartbeat_loop(self, node: SystemNode):
        interval = self.config.heartbeat_interval
        while node.alive:
            stamp = node.tod.read() if node.tod is not None else self.sim.now
            yield from self.cds.update(node.name, f"status:{node.name}", stamp)
            yield self.sim.timeout(interval)

    def _system_restarted(self, node: SystemNode) -> None:
        """A failed system came back: resume heartbeats and rejoin."""
        self.in_sysplex[node.name] = True
        self.sim.process(self._heartbeat_loop(node), name=f"hb-{node.name}")
        for hook in self._rejoin_hooks:
            hook(node)

    # -- detector / SFM ---------------------------------------------------------------
    def _detector_loop(self):
        interval = self.config.heartbeat_interval
        threshold = interval * (self.config.heartbeat_misses + 0.5)
        while True:
            yield self.sim.timeout(interval)
            if not any(n.alive for n in self.nodes):
                continue
            table = yield from self.cds.read_all()
            # break reserves held past the timeout by (possibly) dead systems
            self.cds.break_stale_reserves()
            now = self.sim.now
            for node in self.nodes:
                if not self.in_sysplex.get(node.name, False):
                    continue
                stamp = table.get(f"status:{node.name}")
                if stamp is None:
                    continue  # never heartbeated yet
                if now - stamp > threshold and not node.alive:
                    self._partition(node)
                elif now - stamp > threshold and node.alive:
                    # Status missing but the processor may still be running:
                    # fail-stop policy terminates it outright (SFM ISOLATETIME).
                    node.fail()
                    self._partition(node)

    def _partition(self, node: SystemNode) -> None:
        """Fence and remove a status-missing system."""
        self.detections += 1
        self.detection_log.append((self.sim.now, node.name))
        self.in_sysplex[node.name] = False
        node.fence()
        self.cds.break_reserve_of(node.name)
        self.xcf.partition_out(node)
        for hook in self._partition_hooks:
            hook(node)

    def remove_planned(self, node: SystemNode) -> None:
        """Planned removal: quiesce without failure semantics (the caller
        has already drained work).  Members leave rather than fail."""
        self.in_sysplex[node.name] = False
        for group in list(self.xcf._groups):
            for member in list(self.xcf.members_of(group)):
                if member.node is node:
                    member.leave()
