"""RACF in the sysplex: CF-cached security profiles.

Paper §5.1: "Several MVS base system components including JES2, RACF,
and XCF are exploiting the Coupling Facility."  RACF's exploitation is a
shared profile cache: each system keeps security profiles in local
storage, registered in a CF cache structure, so

* the hot path — an authorization check — is a local lookup plus a bit
  test (microseconds, no I/O, no CF trip);
* an administrator's profile change on any system **cross-invalidates**
  every cached copy sysplex-wide, so a revoked permission takes effect
  on the next check everywhere — without the per-system cache refresh
  commands pre-sysplex RACF needed.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from ..simkernel import Simulator
from .xes import XesConnection

__all__ = ["SecurityManager", "SecurityProfile"]

#: CPU for an authorization check against a locally cached profile
CHECK_CPU = 4e-6
#: CPU to evaluate a freshly fetched profile (parse access list)
LOAD_CPU = 40e-6


class SecurityProfile:
    """A resource profile: which users hold which access level."""

    __slots__ = ("name", "access", "version")

    def __init__(self, name: str):
        self.name = name
        self.access: Dict[str, str] = {}  # user -> READ|UPDATE|ALTER
        self.version = 0

    def permits(self, user: str, level: str) -> bool:
        order = {"NONE": 0, "READ": 1, "UPDATE": 2, "ALTER": 3}
        have = order.get(self.access.get(user, "NONE"), 0)
        return have >= order.get(level, 3)


class SecurityManager:
    """One system's RACF instance with a CF-coherent profile cache."""

    def __init__(self, sim: Simulator, node, database: Dict[str, SecurityProfile],
                 xes: XesConnection, racf_dasd):
        """``database`` is the shared RACF database content (profiles on
        DASD); ``racf_dasd`` the device it lives on; ``xes`` a connection
        to the profile cache structure."""
        self.sim = sim
        self.node = node
        self.database = database
        self.xes = xes
        self.dasd = racf_dasd
        self._local: Dict[str, Tuple[SecurityProfile, int]] = {}  # name -> (copy, bit)
        self._next_bit = 0
        self.checks = 0
        self.local_hits = 0
        self.dasd_fetches = 0

    # -- the hot path ----------------------------------------------------------
    def check_access(self, user: str, profile_name: str,
                     level: str) -> Generator:
        """Process step: authorization check; returns True/False."""
        self.checks += 1
        cache = self.xes.structure
        vector = cache.vector_of(self.xes.connector)
        cached = self._local.get(profile_name)
        if cached is not None and vector.test(cached[1]):
            yield from self.node.cpu.consume(CHECK_CPU)
            self.local_hits += 1
            return cached[0].permits(user, level)
        # miss or invalidated: register + (re)fetch from the RACF database
        bit = cached[1] if cached is not None else self._alloc_bit()
        yield from self.xes.sync(
            lambda: cache.register_and_read(
                self.xes.connector, ("racf", profile_name), bit),
            mirror=lambda s, c: s.register_and_read(
                c, ("racf", profile_name), bit),
        )
        yield from self.dasd.io()
        self.dasd_fetches += 1
        master = self.database.get(profile_name)
        if master is None:
            yield from self.node.cpu.consume(CHECK_CPU)
            return False  # no profile: deny
        copy = SecurityProfile(profile_name)
        copy.access = dict(master.access)
        copy.version = master.version
        self._local[profile_name] = (copy, bit)
        yield from self.node.cpu.consume(LOAD_CPU)
        return copy.permits(user, level)

    def _alloc_bit(self) -> int:
        bit = self._next_bit
        self._next_bit += 1
        return bit

    # -- administration -------------------------------------------------------------
    def alter_profile(self, profile_name: str, user: str,
                      level: str) -> Generator:
        """Process step: change an access list entry (PERMIT/REVOKE).

        Writes the RACF database and cross-invalidates every system's
        cached copy through the CF — the change is live sysplex-wide on
        the next check.
        """
        profile = self.database.setdefault(
            profile_name, SecurityProfile(profile_name))
        if level == "NONE":
            profile.access.pop(user, None)
        else:
            profile.access[user] = level
        profile.version += 1
        yield from self.dasd.io()  # harden the database change
        cache = self.xes.structure
        yield from self.xes.sync(
            lambda: cache.write_and_invalidate(
                self.xes.connector, ("racf", profile_name), store=False),
            mirror=lambda s, c: s.write_and_invalidate(
                c, ("racf", profile_name), store=False),
            signal_wait=True,
        )
        # our own copy is refreshed in place
        cached = self._local.get(profile_name)
        if cached is not None:
            cached[0].access = dict(profile.access)
            cached[0].version = profile.version

    @property
    def hit_rate(self) -> float:
        return self.local_hits / self.checks if self.checks else 0.0
