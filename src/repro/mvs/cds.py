"""Couple data sets: shared operating-system state on DASD.

Paper §3.2, second service: "efficient, shared access to operating system
resource state data ... located on shared disks", with **serialized access**
(hardware reserve with "special time-out logic to handle faulty
processors"), **duplexing** of the disks holding the state, and "hot
switching" of the duplexed pair for planned and unplanned changes.

XCF membership state and the system status (heartbeat) table live here.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..hardware.dasd import DasdDevice
from ..simkernel import Simulator

__all__ = ["CoupleDataSet", "CdsUnavailableError"]


class CdsUnavailableError(Exception):
    """Raised when no couple data set copy is usable."""


class CoupleDataSet:
    """A duplexed key-value state repository with reserve serialization."""

    def __init__(self, sim: Simulator, primary: DasdDevice,
                 alternate: Optional[DasdDevice] = None,
                 reserve_timeout: float = 5.0):
        self.sim = sim
        self.primary = primary
        self.alternate = alternate
        self.reserve_timeout = reserve_timeout
        # The logical content is one copy; duplexing buys availability,
        # not divergence.  Versions let readers detect staleness.
        self._data: Dict[str, Any] = {}
        self._versions: Dict[str, int] = {}
        self.switches = 0
        self.writes = 0
        self.reads = 0
        # reserve holder -> acquisition time, for the timeout logic
        self._reserve_taken_at: Dict[object, float] = {}

    # -- serialized update ----------------------------------------------------
    def update(self, holder: object, key: str, value: Any):
        """Process step: serialized read-modify-write of one key.

        Acquires the primary device reserve, writes primary and alternate,
        releases.  ``holder`` identifies the system for timeout logic.
        """
        dev = self._require_primary()
        ev = dev.reserve(holder)
        yield ev
        self._reserve_taken_at[holder] = self.sim.now
        try:
            yield from dev.io()
            self._data[key] = value
            self._versions[key] = self._versions.get(key, 0) + 1
            if self.alternate is not None:
                yield from self.alternate.io()  # duplexed write
            self.writes += 1
        finally:
            self._reserve_taken_at.pop(holder, None)
            dev.release(holder)

    def read(self, key: str):
        """Process step: read one key (I/O against the primary)."""
        dev = self._require_primary()
        yield from dev.io()
        self.reads += 1
        return self._data.get(key)

    def read_all(self):
        """Process step: scan the whole repository (status-table sweep)."""
        dev = self._require_primary()
        yield from dev.io()
        self.reads += 1
        return dict(self._data)

    def peek(self, key: str) -> Any:
        """Zero-time read for assertions/diagnostics (not a modeled I/O)."""
        return self._data.get(key)

    def version(self, key: str) -> int:
        return self._versions.get(key, 0)

    # -- fault handling ----------------------------------------------------------
    def break_stale_reserves(self) -> int:
        """Timeout logic: free reserves held longer than the threshold
        (their holder is presumed failed).  Returns how many were broken."""
        if self.primary is None:
            return 0
        broken = 0
        now = self.sim.now
        holder = self.primary.reserved_by
        if holder is not None:
            taken = self._reserve_taken_at.get(holder)
            if taken is not None and now - taken > self.reserve_timeout:
                self.primary.break_reserve(holder)
                self._reserve_taken_at.pop(holder, None)
                broken += 1
        return broken

    def break_reserve_of(self, holder: object) -> None:
        """Fencing support: release any reserve held by a failed system."""
        if self.primary is not None:
            self.primary.break_reserve(holder)
        self._reserve_taken_at.pop(holder, None)

    def hot_switch(self, new_alternate: Optional[DasdDevice] = None) -> None:
        """Promote the alternate to primary (planned or unplanned change).

        In-flight content is preserved — that is the point of duplexing.
        """
        if self.alternate is None:
            raise CdsUnavailableError("no alternate to switch to")
        self.primary = self.alternate
        self.alternate = new_alternate
        self.switches += 1

    def _require_primary(self) -> DasdDevice:
        if self.primary is None:
            raise CdsUnavailableError("no primary couple data set")
        return self.primary
