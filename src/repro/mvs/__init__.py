"""MVS multi-system services: XCF, couple data sets, heartbeat/SFM, XES,
WLM, and the Automatic Restart Manager (paper §3.2, §5.1)."""

from .arm import ArmElement, AutomaticRestartManager
from .cds import CdsUnavailableError, CoupleDataSet
from .heartbeat import SysplexMonitor
from .operations import OperationsConsole
from .racf import SecurityManager, SecurityProfile
from .wlm import ServiceClass, WorkloadManager
from .xcf import XcfGroupServices, XcfMember
from .xes import XesConnection, XesServices

__all__ = [
    "ArmElement",
    "AutomaticRestartManager",
    "CdsUnavailableError",
    "CoupleDataSet",
    "OperationsConsole",
    "SecurityManager",
    "SecurityProfile",
    "ServiceClass",
    "SysplexMonitor",
    "WorkloadManager",
    "XcfGroupServices",
    "XcfMember",
    "XesConnection",
    "XesServices",
]
