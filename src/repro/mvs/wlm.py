"""Workload Manager: policy-driven resource management and routing.

Paper §2.1/§5.1: WLM dynamically manages system resources against
workload objectives and "is a key component in sysplex-wide workload
balancing mechanisms".  The model provides:

* per-system **utilization sampling** (EWMA over a fixed interval),
* **service classes** with response-time goals and a performance index
  (achieved / goal — over 1.0 means the goal is missed),
* **routing recommendations**: the probability-weighted server selection
  used by VTAM generic resources for session binds and by the
  transaction managers for individual work requests ("work can be
  directed to other less-utilized system nodes", §2.3),
* the restart-placement advice ARM consumes (§2.5: ARM "is integrated
  with the WLM so that it can provide a target restart system based on
  the current resource utilization").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from ..config import WlmConfig
from ..hardware.system import SystemNode
from ..simkernel import Simulator, Tally

__all__ = ["WorkloadManager", "ServiceClass"]


@dataclass
class ServiceClass:
    """A named workload goal: average response time target."""

    name: str
    response_goal: float
    importance: int = 2
    responses: Tally = field(default_factory=lambda: Tally())

    def performance_index(self) -> float:
        """Achieved / goal.  <1 good, >1 missing the goal.  NaN if no data."""
        return self.responses.mean / self.response_goal


class _SystemState:
    __slots__ = ("node", "util", "area_prev")

    def __init__(self, node: SystemNode):
        self.node = node
        self.util = 0.0
        self.area_prev = node.cpu.engines.busy_area()


class WorkloadManager:
    """Sysplex-wide WLM view (each MVS runs WLM; they share this state
    through the CF — modeled as one council object, costs in the sampler)."""

    def __init__(self, sim: Simulator, config: WlmConfig,
                 rng: np.random.Generator):
        self.sim = sim
        self.config = config
        self.rng = rng
        self._systems: Dict[str, _SystemState] = {}
        self.service_classes: Dict[str, ServiceClass] = {}
        self.define_service_class("OLTP", config.response_goal)

    # -- systems ----------------------------------------------------------
    def watch(self, node: SystemNode) -> None:
        """Begin sampling a system's utilization."""
        if node.name in self._systems:
            return
        self._systems[node.name] = _SystemState(node)
        self.sim.process(self._sampler(node), name=f"wlm-{node.name}")

    def _sampler(self, node: SystemNode):
        state = self._systems[node.name]
        alpha = self.config.smoothing
        interval = self.config.interval
        while True:
            yield self.sim.timeout(interval)
            if not node.alive:
                state.util = 1.0  # dead systems are never recommended
                state.area_prev = node.cpu.engines.busy_area()
                continue
            area = node.cpu.engines.busy_area()
            window = (area - state.area_prev) / (interval * node.cpu.n_cpus)
            state.area_prev = area
            state.util = alpha * window + (1 - alpha) * state.util

    def utilization(self, name: str) -> float:
        state = self._systems.get(name)
        return state.util if state else 0.0

    # -- routing recommendations -----------------------------------------------
    def _weights(self, candidates: Sequence[SystemNode]) -> np.ndarray:
        weights = []
        for node in candidates:
            util = self.utilization(node.name)
            capacity = node.cpu.config.effective_engines() * node.cpu.config.speed
            weights.append(max(1e-6, (1.0 - min(util, 1.0))) * capacity)
        return np.asarray(weights)

    def select_system(self, candidates: Sequence[SystemNode]) -> SystemNode:
        """Weighted-random routing recommendation among live systems.

        Weight = available capacity (headroom x engine capacity), so a
        newly added or under-utilized system naturally attracts work "at an
        increased rate ... until its utilization has reached steady-state"
        (paper §2.4).
        """
        live = [n for n in candidates if n.alive]
        if not live:
            raise RuntimeError("no live system to route to")
        w = self._weights(live)
        return live[int(self.rng.choice(len(live), p=w / w.sum()))]

    def least_utilized(self, candidates: Sequence[SystemNode]) -> SystemNode:
        """Deterministic pick for restart placement (ARM)."""
        live = [n for n in candidates if n.alive]
        if not live:
            raise RuntimeError("no live system available")
        return min(live, key=lambda n: self.utilization(n.name))

    # -- service classes --------------------------------------------------------
    def define_service_class(self, name: str, response_goal: float,
                             importance: int = 2) -> ServiceClass:
        sc = ServiceClass(name, response_goal, importance)
        self.service_classes[name] = sc
        return sc

    def record_response(self, service_class: str, response_time: float) -> None:
        sc = self.service_classes.get(service_class)
        if sc is not None:
            sc.responses.record(response_time)

    def performance_index(self, service_class: str) -> float:
        sc = self.service_classes.get(service_class)
        return sc.performance_index() if sc else float("nan")

    def dispatch_priority(self, service_class: str) -> int:
        """CPU dispatch priority for a class (1 = highest).

        Goal mode in miniature: importance maps to priority, so
        discretionary/batch work (importance >= 3) runs beneath the
        response-goal classes and cannot push them off their goals.
        """
        sc = self.service_classes.get(service_class)
        if sc is None:
            return 3
        return max(1, min(9, sc.importance))

    def utilization_snapshot(self) -> Dict[str, float]:
        return {name: st.util for name, st in self._systems.items()}
