"""Sysplex operations: the single point of control (paper §2.1).

"While the S/390 Parallel Sysplex is physically comprised of multiple MVS
systems, it has been designed to logically present ... a single point of
control to the systems operations staff."

:class:`OperationsConsole` is that point of control: sysplex-wide status
display and the VARY commands used for planned reconfiguration.  The
graceful path (§2.5's planned outage) is QUIESCE → drain → remove: the
target stops accepting new work (the router immediately redistributes),
in-flight transactions complete normally, and only then does the system
leave — so a planned removal loses *zero* transactions, unlike a crash.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from ..hardware.system import SystemNode
from ..simkernel import Simulator

__all__ = ["OperationsConsole"]


class OperationsConsole:
    """Operator's view of (and levers over) the whole sysplex."""

    def __init__(self, sysplex):
        self.sysplex = sysplex
        self.sim: Simulator = sysplex.sim
        self.command_log: List[tuple] = []

    # -- display ------------------------------------------------------------
    def display_status(self) -> Dict[str, dict]:
        """D XCF-style status of every system, one call, one place."""
        plex = self.sysplex
        out: Dict[str, dict] = {}
        for name, inst in plex.instances.items():
            node = inst.node
            state = (
                "ACTIVE" if node.alive and inst.tm.available
                else "QUIESCED" if node.alive
                else "FENCED" if node.fenced
                else "DOWN"
            )
            out[name] = {
                "state": state,
                "cpus": node.cpu.n_cpus,
                "util": round(plex.wlm.utilization(name), 3),
                "active_tasks": inst.tm.tasks.in_use,
                "completed": inst.tm.completed,
                "in_sysplex": plex.monitor.in_sysplex.get(name, False),
            }
        return out

    def display_cf(self) -> List[dict]:
        return [
            {
                "name": cf.name,
                "state": "FAILED" if cf.failed else "ACTIVE",
                "structures": sorted(cf.structures),
                "commands": cf.commands_executed,
            }
            for cf in self.sysplex.cfs
        ]

    # -- planned reconfiguration ------------------------------------------------
    def vary_offline(self, node: SystemNode,
                     drain_timeout: float = 60.0) -> Generator:
        """Process step: gracefully remove a system (planned outage).

        Quiesce (no new work routed there), drain the accepted work —
        both running tasks and the region queue — then leave the sysplex
        and stop.  Returns True if the drain completed; if the operator's
        ``drain_timeout`` expires first, the removal is forced and the
        remaining tasks are lost (they show up in ``txn.failed``).
        """
        self.command_log.append((self.sim.now, f"VARY {node.name},OFFLINE"))
        plex = self.sysplex
        inst = plex.instances[node.name]
        # 1. quiesce: the TM stops accepting; routers skip it immediately
        inst.tm.quiesced = True
        # 2. drain: wait for in-flight tasks to finish (bounded)
        deadline = self.sim.now + drain_timeout
        while ((inst.tm.tasks.in_use > 0 or inst.tm.tasks.queue_length > 0)
               and self.sim.now < deadline):
            yield self.sim.timeout(0.02)
        drained = inst.tm.tasks.in_use == 0 and inst.tm.tasks.queue_length == 0
        # 3. leave: members exit their groups, then the image stops;
        # the monitor is told this is planned so SFM does not "detect" it
        plex.monitor.remove_planned(node)
        if inst.castout is not None:
            inst.castout.stop()
            plex._reassign_castout(exclude=node)
            inst.castout = None
        for xes in (inst.xes_lock, inst.xes_cache, inst.xes_list):
            if xes is not None and not xes.structure.lost:
                # connection-level disconnect: a duplexed secondary is
                # purged of this connector too, not just the primary
                xes.disconnect()
        inst.db.alive = False
        node.fail()
        return drained

    def vary_online(self, node: SystemNode) -> None:
        """Bring a varied-off system back (it re-IPLs and rejoins)."""
        self.command_log.append((self.sim.now, f"VARY {node.name},ONLINE"))
        node.restart()

    def rolling_upgrade(self, outage: float = 1.0,
                        gap: float = 0.5) -> Generator:
        """Process step: §2.5's release migration — roll every system
        through a planned offline/online cycle, one at a time."""
        for node in list(self.sysplex.nodes):
            yield from self.vary_offline(node)
            yield self.sim.timeout(outage)
            self.vary_online(node)
            yield self.sim.timeout(gap)
