"""XCF group services: membership, signalling, and event notification.

Paper §3.2, first service: "processes to join/leave groups, signal other
group members and be notified of events related to the group."  Members
are subsystem instances (an IRLM, a CICS region, a VTAM node); groups tie
together the peer instances across systems.  Signalling rides the
MessageFabric (CTC-class latency + CPU at both ends); membership events
are delivered as callbacks, which is how peer-recovery and ARM learn about
failures.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..hardware.links import MessageFabric
from ..hardware.system import SystemNode
from ..simkernel import Simulator, Store

__all__ = ["XcfGroupServices", "XcfMember"]


class XcfMember:
    """One group member: identity + inbox + event hook."""

    def __init__(self, services: "XcfGroupServices", group: str, name: str,
                 node: SystemNode, inbox: Store,
                 on_event: Optional[Callable[[str, "XcfMember"], None]]):
        self.services = services
        self.group = group
        self.name = name
        self.node = node
        self.inbox = inbox
        self.on_event = on_event
        self.active = True

    @property
    def address(self) -> str:
        return f"{self.group}/{self.name}"

    def send(self, to_member: str, kind: str, payload: dict) -> None:
        """Signal a peer in the same group (fire and forget)."""
        self.services.signal(self, to_member, kind, payload)

    def broadcast(self, kind: str, payload: dict) -> int:
        """Signal every other active member of the group."""
        n = 0
        for peer in self.services.members_of(self.group):
            if peer.name != self.name:
                self.send(peer.name, kind, payload)
                n += 1
        return n

    def leave(self) -> None:
        self.services.leave(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<XcfMember {self.address} on {self.node.name}>"


class XcfGroupServices:
    """The sysplex-wide group registry and signalling switchboard."""

    def __init__(self, sim: Simulator, fabric: MessageFabric):
        self.sim = sim
        self.fabric = fabric
        self._groups: Dict[str, Dict[str, XcfMember]] = {}
        self.events_delivered = 0

    # -- membership ----------------------------------------------------------
    def join(self, group: str, name: str, node: SystemNode,
             on_event: Optional[Callable[[str, XcfMember], None]] = None
             ) -> XcfMember:
        """Join ``group`` as ``name`` from system ``node``."""
        members = self._groups.setdefault(group, {})
        if name in members:
            raise ValueError(f"member {name!r} already in group {group!r}")
        inbox = self.fabric.register(f"{group}/{name}", node.cpu)
        member = XcfMember(self, group, name, node, inbox, on_event)
        members[name] = member
        self._notify(group, "join", member)
        return member

    def leave(self, member: XcfMember) -> None:
        """Voluntary departure."""
        self._remove(member, "leave")

    def member_failed(self, member: XcfMember) -> None:
        """Involuntary departure (system loss): peers get a 'failed' event."""
        self._remove(member, "failed")

    def _remove(self, member: XcfMember, event: str) -> None:
        members = self._groups.get(member.group, {})
        if members.get(member.name) is not member:
            return
        member.active = False
        del members[member.name]
        self.fabric.deregister(member.address)
        self._notify(member.group, event, member)

    def partition_out(self, node: SystemNode) -> List[XcfMember]:
        """SFM removed a whole system: fail every member living on it."""
        lost: List[XcfMember] = []
        for group in list(self._groups):
            for member in list(self._groups[group].values()):
                if member.node is node:
                    self.member_failed(member)
                    lost.append(member)
        return lost

    def members_of(self, group: str) -> List[XcfMember]:
        return list(self._groups.get(group, {}).values())

    def find(self, group: str, name: str) -> Optional[XcfMember]:
        return self._groups.get(group, {}).get(name)

    def _notify(self, group: str, event: str, subject: XcfMember) -> None:
        for member in self.members_of(group):
            if member is subject or member.on_event is None:
                continue
            self.events_delivered += 1
            member.on_event(event, subject)

    # -- signalling --------------------------------------------------------------
    def signal(self, sender: XcfMember, to_member: str, kind: str,
               payload: dict) -> None:
        self.fabric.send(
            sender.address, f"{sender.group}/{to_member}", kind, payload
        )
