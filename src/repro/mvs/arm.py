"""Automatic Restart Manager.

Paper §2.5 lists ARM's four distinguishing capabilities, all modeled here:

1. shared-state awareness — a registry of every element on every system
   (so it knows about processes that "exist" on failed processors);
2. tight integration with heartbeat — SysplexMonitor's partition hook
   calls straight into :meth:`system_failed`;
3. WLM-informed placement — targets are chosen by current utilization;
4. richer restart semantics — **affinity groups** restart together on one
   target, **restart sequencing** (levels restart in order, level n+1
   waiting for level n), and recovery from **cascaded failures** (a target
   dying mid-restart reschedules the element elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import ArmConfig
from ..hardware.system import SystemNode
from ..simkernel import Simulator
from .wlm import WorkloadManager

__all__ = ["AutomaticRestartManager", "ArmElement"]


@dataclass
class ArmElement:
    """A registered restartable element (a subsystem instance)."""

    name: str
    node: SystemNode
    #: invoked as restart_fn(element, target_node); returns a generator
    #: performing the subsystem's own recovery, run as a process.
    restart_fn: Callable
    #: elements sharing an affinity group restart on the same target
    affinity: Optional[str] = None
    #: lower levels restart first; higher levels wait for them
    level: int = 0
    restarts: int = 0
    state: str = "running"  # running | failed | restarting


class AutomaticRestartManager:
    """Sysplex-wide restart coordinator."""

    def __init__(self, sim: Simulator, config: ArmConfig,
                 wlm: WorkloadManager, nodes: Sequence[SystemNode]):
        self.sim = sim
        self.config = config
        self.wlm = wlm
        self.nodes = list(nodes)
        self.elements: Dict[str, ArmElement] = {}
        self.restart_log: List[tuple] = []

    # -- registration -----------------------------------------------------
    def register(self, name: str, node: SystemNode, restart_fn: Callable,
                 affinity: Optional[str] = None, level: int = 0) -> ArmElement:
        el = ArmElement(name, node, restart_fn, affinity, level)
        self.elements[name] = el
        return el

    def deregister(self, name: str) -> None:
        self.elements.pop(name, None)

    def elements_on(self, node: SystemNode) -> List[ArmElement]:
        return [e for e in self.elements.values() if e.node is node]

    # -- failure handling ------------------------------------------------------
    def system_failed(self, node: SystemNode) -> None:
        """Partition hook: restart every element the dead system hosted."""
        victims = [e for e in self.elements_on(node) if e.state == "running"]
        if not victims:
            return
        for el in victims:
            el.state = "failed"
        self.sim.process(self._restart_batch(victims, exclude=node),
                         name=f"arm-restart-{node.name}")

    def _restart_batch(self, victims: List[ArmElement], exclude: SystemNode):
        # Affinity groups get one shared target; singles get their own.
        targets: Dict[str, SystemNode] = {}

        def target_for(el: ArmElement) -> SystemNode:
            key = el.affinity or f"__solo__{el.name}"
            node = targets.get(key)
            if node is None or not node.alive:
                candidates = [n for n in self.nodes if n is not exclude]
                node = self.wlm.least_utilized(candidates)
                targets[key] = node
            return node

        # Restart level by level ("restart sequencing").
        for level in sorted({e.level for e in victims}):
            batch = [e for e in victims if e.level == level]
            procs = [
                self.sim.process(self._restart_one(el, target_for(el)),
                                 name=f"arm-{el.name}")
                for el in batch
            ]
            if procs:
                yield self.sim.all_of(procs)

    def _restart_one(self, el: ArmElement, target: SystemNode):
        el.state = "restarting"
        yield self.sim.timeout(self.config.restart_time)
        if not target.alive:
            # Cascaded failure: the target died while we were restarting.
            candidates = [n for n in self.nodes if n.alive]
            if not candidates:
                el.state = "failed"
                return
            target = self.wlm.least_utilized(candidates)
            yield self.sim.timeout(self.config.restart_time)
            if not target.alive:
                el.state = "failed"
                return
        el.node = target
        el.restarts += 1
        el.state = "running"
        self.restart_log.append((self.sim.now, el.name, target.name))
        # run the subsystem's own recovery logic
        yield self.sim.process(el.restart_fn(el, target),
                               name=f"recover-{el.name}")
