"""XES: MVS services for Coupling Facility exploitation.

The operating-system layer between subsystems and the CF (paper §5.1):
structure allocation across the available facilities, connection services
(which also allocate the local bit vectors), and **structure rebuild** —
the availability mechanism that lets a lock or cache structure be
re-instantiated in an alternate CF from the connectors' local state after
a facility failure ("Multiple CF's can be connected for availability",
§3.3).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..config import CfConfig
from ..cf.commands import CfPort, mirror_async, mirror_sync
from ..cf.facility import CouplingFacility
from ..cf.structure import Connector, Structure
from ..hardware.system import SystemDown, SystemNode
from ..simkernel import Simulator

__all__ = ["XesServices", "XesConnection", "DuplexPair", "DuplexedConnection"]


class XesConnection:
    """One subsystem instance's connection to one structure."""

    def __init__(self, services: "XesServices", node: SystemNode,
                 structure: Structure, port: CfPort, connector: Connector):
        self.services = services
        self.node = node
        self.structure = structure
        self.port = port
        self.connector = connector

    # Convenience pass-throughs charging the command cost model.  The
    # ``mirror`` callback is the duplexing hook: simplex connections
    # ignore it (no secondary instance to keep in step).
    def sync(self, fn: Callable, mirror: Optional[Callable] = None,
             **kw) -> Generator:
        return self.port.sync(fn, **kw)

    def async_(self, fn: Callable, mirror: Optional[Callable] = None,
               **kw) -> Generator:
        return self.port.async_(fn, **kw)

    def instances(self):
        """Every live ``(structure, connector)`` instance pair.

        Direct-mutation paths (undo, abandon) iterate this so a duplexed
        secondary sees the same state surgery the primary does.
        """
        return [(self.structure, self.connector)]

    def disconnect(self) -> None:
        self.structure.disconnect(self.connector)

    @property
    def operational(self) -> bool:
        return self.port.operational and not self.structure.lost


class DuplexPair:
    """One duplexed structure: a primary and (when healthy) a secondary.

    The pair is the unit of failover policy: while ``active``, mutating
    commands run the duplexed-write protocol; when the secondary becomes
    unreachable the pair *breaks* back to simplex (work keeps committing
    against the primary); when the primary's CF dies SFM *promotes* the
    secondary in place.  ``inflight`` counts duplexed writes between
    their primary-apply and secondary-leg completion — the
    duplex-consistency invariant only compares instances when it is zero
    (the protocol is quiesced).
    """

    def __init__(self, services: "XesServices", name: str, model: str,
                 factory: Callable[[], Structure]):
        self.services = services
        self.name = name
        self.model = model
        #: builds an empty structure instance (used by re-duplexing)
        self.factory = factory
        self.primary: Optional[Structure] = None
        self.secondary: Optional[Structure] = None
        self.connections: List["DuplexedConnection"] = []
        self.inflight = 0
        # lifecycle counters (surfaced as chaos observables)
        self.switches = 0
        self.breaks = 0
        self.reestablishes = 0
        #: True while the background re-establish loop is running
        self.reduplexing = False
        #: callback(pair, reason) — Sysplex/SFM records the degraded
        #: event and schedules the background re-duplex
        self.on_break: Optional[Callable] = None

    @property
    def active(self) -> bool:
        """True while duplexed writes should run both legs."""
        s = self.secondary
        return (s is not None and not s.lost
                and s.facility is not None and not s.facility.failed)

    def drop_secondary(self, reason: str) -> None:
        """Fall back to simplex: discard the secondary instance."""
        s = self.secondary
        if s is None:
            return
        self.secondary = None
        self.breaks += 1
        if s.facility is not None and not s.facility.failed:
            s.facility.deallocate(s.name)
        for conn in self.connections:
            conn.sec_structure = None
            conn.sec_port = None
            conn.sec_connector = None
        if self.on_break is not None:
            self.on_break(self, reason)

    def purge_connector(self, connector: Connector) -> None:
        """Purge one connector's state from the current secondary.

        Safe for connectors that were never attached to this secondary
        instance: a break + re-establish while the owning system was
        dead-but-undetected clones the primary's registrations for that
        connector into the fresh secondary without ever attaching the
        connection — fencing must still scrub them from both instances.
        """
        sec = self.secondary
        if sec is None or sec.lost:
            return
        mirror = sec.connectors.get(connector.conn_id)
        if mirror is not None:
            sec.disconnect(mirror)
        else:
            sec._purge_connector(connector)

    def promote(self) -> None:
        """Duplex switch: the secondary becomes the (simplex) primary.

        Rebinds every connection in place, so subsystems holding the
        connection object keep working without re-wiring.
        """
        self.primary = self.secondary
        self.secondary = None
        self.switches += 1
        for conn in self.connections:
            if conn.sec_structure is None:
                continue
            conn.structure = conn.sec_structure
            conn.port = conn.sec_port
            conn.connector = conn.sec_connector
            conn.sec_structure = None
            conn.sec_port = None
            conn.sec_connector = None


class DuplexedConnection(XesConnection):
    """A connection backed by a duplexed structure pair.

    Mutating callers pass ``mirror`` — a ``(structure, connector) ->
    None`` callback applying the same mutation to the secondary.  The
    mirror runs *atomically with the primary mutation* (at primary
    command-execution time), so both instances apply every operation in
    the primary's execution order and a quiesced pair always
    byte-agrees; the secondary's link + CF service cost is then paid as
    a second round trip.  A failure on that secondary leg breaks the
    pair to simplex — the primary result already stands, so the caller
    never sees the break.
    """

    def __init__(self, services: "XesServices", node: SystemNode,
                 structure: Structure, port: CfPort, connector: Connector,
                 pair: DuplexPair):
        super().__init__(services, node, structure, port, connector)
        self.pair = pair
        self.sec_structure: Optional[Structure] = None
        self.sec_port: Optional[CfPort] = None
        self.sec_connector: Optional[Connector] = None

    # -- the duplexed-write protocol --------------------------------------
    def _both(self, fn: Callable, mirror: Callable) -> Callable:
        """Wrap ``fn`` so the mirror applies atomically with it."""
        def both():
            result = fn()
            sec = self.sec_structure
            if sec is not None and not sec.lost:
                try:
                    mirror(sec, self.sec_connector)
                except Exception as exc:  # never poison the primary leg
                    self.pair.drop_secondary(
                        f"mirror:{type(exc).__name__}")
            return result
        return both

    def _secondary_leg(self, leg: Callable, kw: dict) -> Generator:
        """Pay the secondary round trip; break to simplex on failure."""
        port = self.sec_port
        if port is None:  # the mirror itself broke the pair
            return
        try:
            yield from leg(port, **kw)
        except SystemDown:
            raise  # the *issuing* system died — not the secondary's fault
        except Exception as exc:
            self.pair.drop_secondary(type(exc).__name__)

    def sync(self, fn: Callable, mirror: Optional[Callable] = None,
             **kw) -> Generator:
        if mirror is None:
            return self.port.sync(fn, **kw)
        if not self.pair.active:
            # simplex at issue time — but a concurrent re-duplex may
            # attach a secondary before this command *executes* at the
            # CF, so keep the wrap: ``_both`` re-checks at execution
            # time and mirrors iff a secondary exists by then (the
            # write rides the copy stream, no second round trip)
            return self.port.sync(self._both(fn, mirror), **kw)
        return self._duplexed(self.port.sync, mirror_sync, fn, mirror, kw)

    def async_(self, fn: Callable, mirror: Optional[Callable] = None,
               **kw) -> Generator:
        if mirror is None:
            return self.port.async_(fn, **kw)
        if not self.pair.active:
            return self.port.async_(self._both(fn, mirror), **kw)
        return self._duplexed(self.port.async_, mirror_async, fn, mirror, kw)

    def _duplexed(self, primary_leg: Callable, secondary_leg: Callable,
                  fn: Callable, mirror: Callable, kw: dict) -> Generator:
        pair = self.pair
        pair.inflight += 1
        try:
            result = yield from primary_leg(self._both(fn, mirror), **kw)
            yield from self._secondary_leg(secondary_leg, kw)
        finally:
            pair.inflight -= 1
        return result

    # -- bookkeeping -------------------------------------------------------
    def instances(self):
        out = [(self.structure, self.connector)]
        if self.sec_structure is not None:
            out.append((self.sec_structure, self.sec_connector))
        return out

    def disconnect(self) -> None:
        super().disconnect()
        # via the pair, not the cached sec_* binding: the pair may have
        # re-established a secondary this connection never attached to
        self.pair.purge_connector(self.connector)
        if self in self.pair.connections:
            self.pair.connections.remove(self)


class XesServices:
    """Sysplex-wide structure registry and connection manager."""

    def __init__(self, sim: Simulator, config: CfConfig, trace=None,
                 streams=None, collapse: Optional[bool] = None):
        self.sim = sim
        self.config = config
        self.trace = trace  # Tracer or None; threaded into every CfPort
        #: RandomStreams or None; with request-level robustness enabled
        #: each system's ports share a seeded backoff-jitter stream
        self.streams = streams
        #: per-sysplex CF-command collapse policy, threaded into every
        #: CfPort; None defers to the repro.cf.commands.COLLAPSE default
        self.collapse = collapse
        self.facilities: List[CouplingFacility] = []
        #: structure name -> DuplexPair for every duplexed structure
        self.duplex_pairs: Dict[str, DuplexPair] = {}
        self.rebuilds = 0
        self.rebuilds_started = 0
        #: (time, node, structure, error) rows for contributors that died
        #: mid-rebuild; the rebuild completes from the survivors
        self.contributor_failures: List[tuple] = []

    def add_facility(self, cf: CouplingFacility) -> None:
        self.facilities.append(cf)

    def live_facilities(self) -> List[CouplingFacility]:
        return [cf for cf in self.facilities if not cf.failed]

    # -- allocation / connection ----------------------------------------------
    def allocate(self, structure: Structure,
                 preferred: Optional[CouplingFacility] = None) -> CouplingFacility:
        """Place a structure in a CF (preferred, else first live one)."""
        cf = preferred if preferred is not None and not preferred.failed else None
        if cf is None:
            live = self.live_facilities()
            if not live:
                raise RuntimeError("no live coupling facility")
            cf = live[0]
        cf.allocate(structure)
        return cf

    def find(self, name: str) -> Optional[Structure]:
        # a duplexed structure resolves to its primary instance (reads
        # and new connections always target the primary)
        pair = self.duplex_pairs.get(name)
        if pair is not None and pair.primary is not None \
                and not pair.primary.lost:
            return pair.primary
        for cf in self.facilities:
            st = cf.structure(name)
            if st is not None and not st.lost:
                return st
        return None

    def _port(self, node: SystemNode, cf: CouplingFacility) -> CfPort:
        """Build a command port from ``node`` to ``cf``."""
        links = node.cf_links.get(cf.name)
        if links is None:
            raise RuntimeError(f"{node.name} has no links to {cf.name}")
        retry_rng = None
        if self.streams is not None and self.config.request_timeout is not None:
            retry_rng = self.streams.stream(f"cfretry-{node.name}")
        return CfPort(node, cf, links, self.config, trace=self.trace,
                      retry_rng=retry_rng, collapse=self.collapse)

    def connect(self, node: SystemNode, structure_name: str,
                on_loss: Optional[Callable[[], None]] = None) -> XesConnection:
        """Connect a subsystem on ``node`` to a named structure."""
        structure = self.find(structure_name)
        if structure is None:
            raise KeyError(f"structure {structure_name!r} not allocated")
        port = self._port(node, structure.facility)
        connector = structure.connect(node.name, on_loss)
        return XesConnection(self, node, structure, port, connector)

    # -- duplexing ----------------------------------------------------------------
    def establish_duplexing(self, structure_name: str,
                            factory: Callable[[], Structure],
                            secondary_cf: CouplingFacility) -> DuplexPair:
        """Stand up a secondary instance of an allocated structure.

        Called at wiring time (before any connections): the secondary
        starts empty, exactly like the primary.
        """
        primary = self.find(structure_name)
        if primary is None:
            raise KeyError(f"structure {structure_name!r} not allocated")
        if secondary_cf is primary.facility:
            raise ValueError("secondary CF must differ from the primary's")
        secondary = factory()
        secondary_cf.allocate(secondary)
        pair = DuplexPair(self, structure_name, primary.model, factory)
        pair.primary = primary
        pair.secondary = secondary
        self.duplex_pairs[structure_name] = pair
        return pair

    def connect_duplexed(self, node: SystemNode, structure_name: str,
                         on_loss: Optional[Callable[[], None]] = None
                         ) -> XesConnection:
        """Connect to a structure, duplex-aware.

        Falls back to a plain connection when the structure is not (or
        no longer) duplexed.  The secondary connector is forced to the
        primary's conn_id, and for vector-bearing models the secondary
        shares the connector's *real* local vector — bit vectors live in
        protected processor storage per system, not per structure copy.
        """
        pair = self.duplex_pairs.get(structure_name)
        if pair is None:
            return self.connect(node, structure_name, on_loss)
        base = self.connect(node, structure_name, on_loss)
        conn = DuplexedConnection(self, node, base.structure, base.port,
                                  base.connector, pair)
        if pair.secondary is not None:
            self._attach_secondary(conn)
        pair.connections.append(conn)
        return conn

    def _attach_secondary(self, conn: DuplexedConnection) -> None:
        """Wire one connection's secondary side (connect + share vector)."""
        pair = conn.pair
        secondary = pair.secondary
        conn.sec_port = self._port(conn.node, secondary.facility)
        conn.sec_connector = secondary.connect(
            conn.node.name, conn_id=conn.connector.conn_id)
        primary_vectors = getattr(pair.primary, "vectors", None)
        if primary_vectors is not None:
            cid = conn.connector.conn_id
            secondary.vectors[cid] = primary_vectors[cid]
        conn.sec_structure = secondary

    def reestablish_secondary(self, pair: DuplexPair) -> Generator:
        """Process step: re-duplex a simplex pair into a second live CF.

        Pays one costed async command (scaled by the primary's state
        size — the copy traffic), then atomically clones the primary's
        state into a fresh secondary and re-attaches every surviving
        connection.  Raises when no second CF is available or the copy
        command fails; the caller (SFM) retries later.
        """
        primary = pair.primary
        if primary is None or primary.lost:
            raise RuntimeError("no primary to re-duplex from")
        candidates = [cf for cf in self.live_facilities()
                      if cf is not primary.facility]
        if not candidates:
            raise RuntimeError("no second live CF to re-duplex into")
        target = candidates[0]
        carrier = next(
            (c for c in pair.connections
             if c.node.alive and c.connector.active), None)
        if carrier is None:
            raise RuntimeError("no surviving connection to carry the copy")
        # the copy traffic: one bulk command over the carrier's links
        port = self._port(carrier.node, target)
        units = primary.state_units()
        yield from port.async_(lambda: None, out_bytes=4096, data=True,
                               service_factor=max(1.0, 0.05 * units))
        # atomic at copy completion: allocate, clone, re-attach
        secondary = pair.factory()
        target.allocate(secondary)
        secondary.clone_state_from(primary)
        pair.secondary = secondary
        for conn in pair.connections:
            if conn.node.alive and conn.connector.active:
                self._attach_secondary(conn)
        pair.reestablishes += 1

    # -- rebuild ------------------------------------------------------------------
    def rebuild(self, structure_name: str, factory: Callable[[], Structure],
                contributors: Dict[SystemNode, Callable[[XesConnection], Generator]]
                ) -> Generator:
        """Process step: rebuild a lost structure into a surviving CF.

        ``factory`` builds an empty replacement; each contributor's
        generator repopulates it from that system's local state (e.g. the
        lock manager re-records every lock it holds).  Returns the new
        connections keyed by node.

        A contributor that dies mid-rebuild (its system crashes, its
        links drop, the target CF fails under it) is recorded in
        :attr:`contributor_failures` and the rebuild completes from the
        surviving contributions — a crashing peer must not hang the
        recovery every other system is waiting on.  Raises
        ``RuntimeError`` if no live CF exists to rebuild into; callers
        running inside a process should convert that into a recorded
        degraded-mode outcome (see ``Sysplex._rebuild_structures``).
        """
        self.rebuilds_started += 1
        old = None
        for cf in self.facilities:
            st = cf.structure(structure_name)
            if st is not None:
                old = st
                cf.deallocate(structure_name)
        live = self.live_facilities()
        if not live:
            raise RuntimeError("rebuild impossible: no live CF")
        target = live[0]
        if old is not None and old.facility is target:  # pragma: no cover
            target = live[-1]
        new = factory()
        target.allocate(new)

        connections: Dict[SystemNode, XesConnection] = {}
        procs = []
        for node, contribute in contributors.items():
            if not node.alive:
                continue
            conn = self.connect(node, structure_name)
            connections[node] = conn
            procs.append(
                self.sim.process(
                    self._guarded_contribution(node, structure_name,
                                               contribute(conn)),
                    name=f"rebuild-{node.name}",
                )
            )
        if procs:
            yield self.sim.all_of(procs)
        self.rebuilds += 1
        return connections

    def _guarded_contribution(self, node: SystemNode, structure_name: str,
                              contribution: Generator) -> Generator:
        """Run one contributor, absorbing its failure into a recorded row."""
        try:
            yield from contribution
        except Exception as exc:
            self.contributor_failures.append(
                (self.sim.now, node.name, structure_name,
                 type(exc).__name__)
            )
