"""XES: MVS services for Coupling Facility exploitation.

The operating-system layer between subsystems and the CF (paper §5.1):
structure allocation across the available facilities, connection services
(which also allocate the local bit vectors), and **structure rebuild** —
the availability mechanism that lets a lock or cache structure be
re-instantiated in an alternate CF from the connectors' local state after
a facility failure ("Multiple CF's can be connected for availability",
§3.3).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..config import CfConfig
from ..cf.commands import CfPort
from ..cf.facility import CouplingFacility
from ..cf.structure import Connector, Structure
from ..hardware.system import SystemNode
from ..simkernel import Simulator

__all__ = ["XesServices", "XesConnection"]


class XesConnection:
    """One subsystem instance's connection to one structure."""

    def __init__(self, services: "XesServices", node: SystemNode,
                 structure: Structure, port: CfPort, connector: Connector):
        self.services = services
        self.node = node
        self.structure = structure
        self.port = port
        self.connector = connector

    # Convenience pass-throughs charging the command cost model.
    def sync(self, fn: Callable, **kw) -> Generator:
        return self.port.sync(fn, **kw)

    def async_(self, fn: Callable, **kw) -> Generator:
        return self.port.async_(fn, **kw)

    def disconnect(self) -> None:
        self.structure.disconnect(self.connector)

    @property
    def operational(self) -> bool:
        return self.port.operational and not self.structure.lost


class XesServices:
    """Sysplex-wide structure registry and connection manager."""

    def __init__(self, sim: Simulator, config: CfConfig, trace=None,
                 streams=None, collapse: Optional[bool] = None):
        self.sim = sim
        self.config = config
        self.trace = trace  # Tracer or None; threaded into every CfPort
        #: RandomStreams or None; with request-level robustness enabled
        #: each system's ports share a seeded backoff-jitter stream
        self.streams = streams
        #: per-sysplex CF-command collapse policy, threaded into every
        #: CfPort; None defers to the repro.cf.commands.COLLAPSE default
        self.collapse = collapse
        self.facilities: List[CouplingFacility] = []
        self.rebuilds = 0
        self.rebuilds_started = 0
        #: (time, node, structure, error) rows for contributors that died
        #: mid-rebuild; the rebuild completes from the survivors
        self.contributor_failures: List[tuple] = []

    def add_facility(self, cf: CouplingFacility) -> None:
        self.facilities.append(cf)

    def live_facilities(self) -> List[CouplingFacility]:
        return [cf for cf in self.facilities if not cf.failed]

    # -- allocation / connection ----------------------------------------------
    def allocate(self, structure: Structure,
                 preferred: Optional[CouplingFacility] = None) -> CouplingFacility:
        """Place a structure in a CF (preferred, else first live one)."""
        cf = preferred if preferred is not None and not preferred.failed else None
        if cf is None:
            live = self.live_facilities()
            if not live:
                raise RuntimeError("no live coupling facility")
            cf = live[0]
        cf.allocate(structure)
        return cf

    def find(self, name: str) -> Optional[Structure]:
        for cf in self.facilities:
            st = cf.structure(name)
            if st is not None and not st.lost:
                return st
        return None

    def connect(self, node: SystemNode, structure_name: str,
                on_loss: Optional[Callable[[], None]] = None) -> XesConnection:
        """Connect a subsystem on ``node`` to a named structure."""
        structure = self.find(structure_name)
        if structure is None:
            raise KeyError(f"structure {structure_name!r} not allocated")
        cf = structure.facility
        links = node.cf_links.get(cf.name)
        if links is None:
            raise RuntimeError(f"{node.name} has no links to {cf.name}")
        retry_rng = None
        if self.streams is not None and self.config.request_timeout is not None:
            retry_rng = self.streams.stream(f"cfretry-{node.name}")
        port = CfPort(node, cf, links, self.config, trace=self.trace,
                      retry_rng=retry_rng, collapse=self.collapse)
        connector = structure.connect(node.name, on_loss)
        return XesConnection(self, node, structure, port, connector)

    # -- rebuild ------------------------------------------------------------------
    def rebuild(self, structure_name: str, factory: Callable[[], Structure],
                contributors: Dict[SystemNode, Callable[[XesConnection], Generator]]
                ) -> Generator:
        """Process step: rebuild a lost structure into a surviving CF.

        ``factory`` builds an empty replacement; each contributor's
        generator repopulates it from that system's local state (e.g. the
        lock manager re-records every lock it holds).  Returns the new
        connections keyed by node.

        A contributor that dies mid-rebuild (its system crashes, its
        links drop, the target CF fails under it) is recorded in
        :attr:`contributor_failures` and the rebuild completes from the
        surviving contributions — a crashing peer must not hang the
        recovery every other system is waiting on.  Raises
        ``RuntimeError`` if no live CF exists to rebuild into; callers
        running inside a process should convert that into a recorded
        degraded-mode outcome (see ``Sysplex._rebuild_structures``).
        """
        self.rebuilds_started += 1
        old = None
        for cf in self.facilities:
            st = cf.structure(structure_name)
            if st is not None:
                old = st
                cf.deallocate(structure_name)
        live = self.live_facilities()
        if not live:
            raise RuntimeError("rebuild impossible: no live CF")
        target = live[0]
        if old is not None and old.facility is target:  # pragma: no cover
            target = live[-1]
        new = factory()
        target.allocate(new)

        connections: Dict[SystemNode, XesConnection] = {}
        procs = []
        for node, contribute in contributors.items():
            if not node.alive:
                continue
            conn = self.connect(node, structure_name)
            connections[node] = conn
            procs.append(
                self.sim.process(
                    self._guarded_contribution(node, structure_name,
                                               contribute(conn)),
                    name=f"rebuild-{node.name}",
                )
            )
        if procs:
            yield self.sim.all_of(procs)
        self.rebuilds += 1
        return connections

    def _guarded_contribution(self, node: SystemNode, structure_name: str,
                              contribution: Generator) -> Generator:
        """Run one contributor, absorbing its failure into a recorded row."""
        try:
            yield from contribution
        except Exception as exc:
            self.contributor_failures.append(
                (self.sim.now, node.name, structure_name,
                 type(exc).__name__)
            )
