"""SFM: Sysplex Failure Management for CF-structure recovery.

The policy layer that decides *how* a sysplex recovers from a coupling
facility failure (paper §2.5 / §3.3).  Driven entirely by events — it
owns no periodic process and draws no randomness, so building it costs a
``duplex="none"`` run nothing.

Two recovery paths exist for a structure whose CF dies:

* **Duplex switch** — the structure was system-managed duplexed and its
  secondary instance survives: after ``SfmConfig.detection_interval``
  the secondary is promoted in place (connections rebind, no state
  replay) and a background process re-establishes a fresh secondary
  after ``reestablish_delay``.
* **Structure rebuild** — the structure was simplex (or both instances
  are gone): the classic path, re-populating a fresh instance from the
  connectors' local state.

Every recovery is recorded as an *incident* — detect → freeze →
switch/rebuild → resume timestamps plus the recovery time scored
against the structure class's ``recovery_slo_ms`` — and surfaced in
chaos/experiment payloads, which is how EXP-DUPLEX measures the MTTR
side of the duplexing trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cf.facility import CouplingFacility
from .xes import DuplexPair

__all__ = ["SfmPolicyEngine"]


class SfmPolicyEngine:
    """Declarative per-run recovery policy + incident recorder."""

    def __init__(self, plex):
        self.plex = plex
        self.policy = plex.config.sfm
        #: completed recovery incidents (dict rows, payload-ready)
        self.incidents: List[dict] = []
        #: cf name -> open legacy-rebuild rows awaiting completion
        self._open: Dict[str, List[dict]] = {}
        for pair in plex.xes.duplex_pairs.values():
            pair.on_break = self._pair_broke

    # -- incident bookkeeping ------------------------------------------------
    def _record(self, structure: str, model: str, kind: str,
                failed_at: float, detected_at: float, resumed_at: float,
                cf_name: str) -> None:
        recovery_ms = (resumed_at - detected_at) * 1000.0
        slo_ms = self.policy.slo_ms(model)
        self.incidents.append({
            "structure": structure,
            "model": model,
            "kind": kind,
            "cf": cf_name,
            "failed_at": failed_at,
            "detected_at": detected_at,
            "resumed_at": resumed_at,
            "recovery_ms": recovery_ms,
            "slo_ms": slo_ms,
            "slo_met": recovery_ms <= slo_ms,
        })

    def report(self) -> dict:
        """Policy + incident timelines for experiment payloads."""
        p = self.policy
        return {
            "policy": {
                "detection_interval": p.detection_interval,
                "reestablish_delay": p.reestablish_delay,
                "lock_slo_ms": p.lock_slo_ms,
                "cache_slo_ms": p.cache_slo_ms,
                "list_slo_ms": p.list_slo_ms,
            },
            "incidents": list(self.incidents),
        }

    # -- legacy simplex path (passive recording, zero events) ----------------
    def rebuild_started(self, cf: CouplingFacility,
                        structures: List[Tuple[str, str]]) -> None:
        """The classic whole-plex rebuild kicked off (non-duplexed runs).

        Detection is immediate on this path (byte-identical to the
        historical behaviour); SFM only takes notes.
        """
        now = self.plex.sim.now
        self._open.setdefault(cf.name, []).extend(
            {"structure": name, "model": model, "failed_at": now}
            for name, model in structures
        )

    def rebuild_finished(self, cf: CouplingFacility) -> None:
        now = self.plex.sim.now
        for row in self._open.pop(cf.name, []):
            self._record(row["structure"], row["model"], "rebuild",
                         row["failed_at"], row["failed_at"], now, cf.name)

    def rebuild_abandoned(self, cf: CouplingFacility) -> None:
        """The rebuild died (no live CF, contributors gone): the degraded
        event carries the outcome; no incident is recorded."""
        self._open.pop(cf.name, None)

    # -- duplex-aware recovery (active path) ----------------------------------
    def cf_failed(self, cf: CouplingFacility) -> None:
        """Drive recovery for every structure the failed CF hosted."""
        plex = self.plex
        pairs = plex.xes.duplex_pairs
        failed_at = plex.sim.now

        # secondaries on the failed CF: drop to simplex now (mutating
        # commands stop running the second leg immediately); the break
        # hook schedules the background re-duplex
        for pair in list(pairs.values()):
            if pair.secondary is not None and pair.secondary.facility is cf:
                pair.drop_secondary(f"cf-failed:{cf.name}")

        switches: List[DuplexPair] = []
        rebuilds: List[Tuple[str, str]] = []
        for name, pair in list(pairs.items()):
            if pair.primary is None or pair.primary.facility is not cf:
                continue
            if pair.secondary is not None:
                switches.append(pair)
            else:
                # both instances gone: the structure falls back to the
                # rebuild path and stops being duplexed for the rest of
                # the run (connections re-wire as plain simplex ones)
                rebuilds.append((name, pair.model))
                del pairs[name]
        for st in cf.structures.values():
            if st.name not in pairs and not any(n == st.name
                                                for n, _ in rebuilds):
                if any(p.primary is st or p.secondary is st
                       for p in pairs.values()):
                    continue  # pragma: no cover - handled above
                rebuilds.append((st.name, st.model))

        if not switches and not rebuilds:
            return  # the CF hosted nothing that needs recovery
        plex.sim.process(
            self._managed_recovery(cf, failed_at, switches, rebuilds),
            name=f"sfm-recovery-{cf.name}",
        )

    def _managed_recovery(self, cf: CouplingFacility, failed_at: float,
                          switches: List[DuplexPair],
                          rebuilds: List[Tuple[str, str]]):
        plex = self.plex
        yield plex.sim.timeout(self.policy.detection_interval)
        detected_at = plex.sim.now
        # promote every surviving secondary before any signalling: the
        # rebind is in-place, so all switched structures resume service
        # at detection time, not behind each other's acknowledgments
        for pair in switches:
            pair.promote()
            plex.metrics.counter("cf.switches").add()
            if pair.model == "cache":
                plex._restart_castout()
        for pair in switches:
            plex.sim.process(
                self._switch_handshake(pair, cf, failed_at, detected_at),
                name=f"sfm-switch-{pair.name}",
            )
        for name, model in rebuilds:
            if not plex.xes.live_facilities():
                plex._degraded(f"no-live-cf-after:{cf.name}")
                continue
            plex.metrics.counter("cf.rebuilds_started").add()
            try:
                yield from plex._rebuild_structures((name,))
            except Exception as exc:
                plex._degraded(
                    f"rebuild-abandoned-after:{cf.name}:{type(exc).__name__}"
                )
            else:
                plex.metrics.counter("cf.rebuilds").add()
                self._record(name, model, "rebuild", failed_at,
                             detected_at, plex.sim.now, cf.name)

    def _switch_handshake(self, pair: DuplexPair, cf: CouplingFacility,
                          failed_at: float, detected_at: float):
        """One structure's switch completion, independent of its siblings:
        each surviving connection acknowledges the promoted primary with
        one cheap command, then the incident is recorded and the
        background re-duplex scheduled."""
        plex = self.plex
        for conn in list(pair.connections):
            if not conn.node.alive or not conn.connector.active:
                continue
            try:
                yield from conn.sync(lambda: None)
            except Exception as exc:
                plex._degraded(
                    f"switch-handshake:{pair.name}:{type(exc).__name__}"
                )
        self._record(pair.name, pair.model, "switch", failed_at,
                     detected_at, plex.sim.now, cf.name)
        self.schedule_reduplex(pair)

    # -- re-duplexing ----------------------------------------------------------
    def _pair_broke(self, pair: DuplexPair, reason: str) -> None:
        plex = self.plex
        plex._degraded(f"duplex-simplex:{pair.name}:{reason}")
        plex.metrics.counter("duplex.breaks").add()
        self.schedule_reduplex(pair)

    def schedule_reduplex(self, pair: DuplexPair) -> None:
        """Start the background re-establish loop for a simplex pair."""
        if pair.name not in self.plex.xes.duplex_pairs or pair.reduplexing:
            return
        pair.reduplexing = True
        self.plex.sim.process(self._reduplex_loop(pair),
                              name=f"reduplex-{pair.name}")

    def _reduplex_loop(self, pair: DuplexPair):
        plex = self.plex
        delay = max(self.policy.reestablish_delay, 1e-3)
        try:
            while (pair.secondary is None
                   and pair.name in plex.xes.duplex_pairs
                   and pair.primary is not None and not pair.primary.lost):
                yield plex.sim.timeout(delay)
                if pair.secondary is not None:
                    break
                started = plex.sim.now
                try:
                    yield from plex.xes.reestablish_secondary(pair)
                except Exception:
                    continue  # no second CF / copy failed: try again later
                plex.metrics.counter("duplex.reestablished").add()
                self._record(pair.name, pair.model, "reestablish",
                             started, started, plex.sim.now,
                             pair.secondary.facility.name)
        finally:
            pair.reduplexing = False
