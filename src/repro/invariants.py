"""Sysplex invariant checking: the properties chaos testing asserts.

A Parallel Sysplex makes hard promises under failure (paper §2.5, §3.3):
serialization stays correct, committed work survives, recovery always
terminates, and service returns once the fault is repaired.  The
:class:`InvariantChecker` watches a running :class:`~repro.sysplex.Sysplex`
and *records* — never raises — every violation it observes, so a chaos
run completes and reports all findings instead of dying on the first.

Checked continuously (every ``interval`` simulated seconds):

* **Lock safety** — no resource is ever held EXCL by one owner while any
  other owner holds it (strict-2PL serialization, §3.3.1).
* **Commit durability** — a transaction counted complete must have
  committed through its instance's database manager first.
* **Transaction conservation** — work never double-counts or vanishes
  silently: ``completed + failed <= submitted`` and
  ``submitted + lost <= generated`` at every instant (the slack is
  in-flight work).

Checked once at :meth:`finalize`:

* **Rebuild termination** — every structure rebuild that started either
  completed or was explicitly recorded as abandoned (degraded mode);
  none may hang.
* **Retained-lock release** — after the grace period following the last
  fault, no retained locks linger (peer recovery ran), unless the
  sysplex is legitimately degraded.
* **Conservation at rest** — after a drain, in-flight slack aside, the
  books balance.

:func:`check_reconvergence` separately asserts the availability promise:
throughput after the last repair returns to a fraction of offered load.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .cf.lock import LockMode
from .simkernel import Simulator

__all__ = ["InvariantChecker", "Violation", "check_reconvergence"]


class Violation:
    """One recorded invariant violation (plain data, JSON-ready)."""

    __slots__ = ("time", "name", "detail")

    def __init__(self, time: float, name: str, detail: str):
        self.time = time
        self.name = name
        self.detail = detail

    def to_dict(self) -> dict:
        return {"time": self.time, "name": self.name, "detail": self.detail}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Violation {self.name}@{self.time:.3f}: {self.detail}>"


class InvariantChecker:
    """Continuously evaluates sysplex invariants during a (chaos) run.

    ``generator`` is the workload's :class:`~repro.workloads.oltp.
    OltpGenerator` (optional: conservation against ``generated`` is
    skipped without it).  The checker is a passive observer — it never
    mutates sysplex state and never raises; read :attr:`violations` or
    :meth:`report` when the run ends.
    """

    def __init__(self, plex, generator=None, interval: float = 0.1):
        self.plex = plex
        self.generator = generator
        self.interval = interval
        self.violations: List[Violation] = []
        self.scans = 0
        #: which decision branches the scans actually exercised, as
        #: ``branch-name -> hit count``.  This is *coverage*, not
        #: correctness: the fuzzer's feature map reads it to know whether
        #: a mutated scenario drove the checker somewhere new (e.g. into
        #: the retained-lock excusal paths) even when no violation fired.
        self.branches: Dict[str, int] = {}
        #: dedup: one report per (name, detail-key) so a persistent bad
        #: state doesn't flood the report every scan tick
        self._seen: set = set()
        self.sim: Simulator = plex.sim
        self._finalized = False
        self.sim.process(self._loop(), name="invariant-checker")

    # -- recording ---------------------------------------------------------
    def _branch(self, name: str) -> None:
        self.branches[name] = self.branches.get(name, 0) + 1

    def _record(self, name: str, detail: str, key: Optional[str] = None) -> None:
        dedup = (name, key if key is not None else detail)
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        self.violations.append(Violation(self.sim.now, name, detail))

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> dict:
        """A JSON-ready summary of everything observed."""
        return {
            "ok": self.ok,
            "scans": self.scans,
            "finalized": self._finalized,
            "branches": {k: self.branches[k] for k in sorted(self.branches)},
            "violations": [v.to_dict() for v in self.violations],
        }

    # -- the periodic scan -------------------------------------------------
    def _loop(self):
        while True:
            yield self.sim.timeout(self.interval)
            self.scan()

    def scan(self) -> None:
        """One pass over the continuously-checkable invariants."""
        self.scans += 1
        self._check_lock_safety()
        self._check_commit_durability()
        self._check_conservation()
        self._check_duplex_consistency()

    def _check_lock_safety(self) -> None:
        """Strict-2PL safety: an EXCL holder is alone on its resource."""
        for name, res in self.plex.lock_space._resources.items():
            holders = res.holders
            if len(holders) < 2:
                continue
            self._branch("lock-safety:multi-holder")
            if any(m == LockMode.EXCL for m in holders.values()):
                self._branch("lock-safety:violation")
                self._record(
                    "lock-safety",
                    f"resource {name!r} held {dict(holders)!r}",
                    key=repr(name),
                )

    def _check_commit_durability(self) -> None:
        """A completed transaction committed through its instance first.

        Both counters live and die with the incarnation (a revived system
        gets a fresh DatabaseManager *and* TransactionManager), so the
        comparison is valid across arbitrarily many crash/revive cycles.
        """
        for sys_name, inst in self.plex.instances.items():
            if inst.db.commits < inst.tm.completed:
                self._branch("commit-durability:violation")
                self._record(
                    "commit-durability",
                    f"{sys_name}: {inst.tm.completed} completed but only "
                    f"{inst.db.commits} committed",
                    key=sys_name,
                )

    def _counts(self) -> Dict[str, int]:
        m = self.plex.metrics
        return {
            "submitted": m.counter("txn.submitted").count,
            "completed": m.counter("txn.completed").count,
            "failed": m.counter("txn.failed").count,
            "lost": self.plex.router.lost,
            "generated": (
                self.generator.generated if self.generator is not None else -1
            ),
        }

    def _check_conservation(self) -> None:
        """No transaction is double-counted or silently dropped."""
        c = self._counts()
        if c["lost"] > 0:
            self._branch("conservation:lost-work")
        if c["completed"] + c["failed"] > c["submitted"]:
            self._branch("conservation:outcomes-violation")
            self._record(
                "conservation",
                f"completed {c['completed']} + failed {c['failed']} "
                f"> submitted {c['submitted']}",
                key="outcomes>submitted",
            )
        if c["generated"] >= 0 and c["submitted"] + c["lost"] > c["generated"]:
            self._branch("conservation:generated-violation")
            self._record(
                "conservation",
                f"submitted {c['submitted']} + lost {c['lost']} "
                f"> generated {c['generated']}",
                key="submitted>generated",
            )

    def _check_duplex_consistency(self) -> None:
        """Primary and secondary of a duplexed pair byte-agree at rest.

        The duplexed-write protocol applies every mutation to both
        instances atomically at primary command-execution time, so the
        comparable state must agree whenever the pair is quiesced (no
        command mid-flight).  A disagreement means a mutation path
        bypassed the protocol — exactly the corruption duplexing must
        never introduce.
        """
        pairs = getattr(self.plex.xes, "duplex_pairs", {})
        for name, pair in pairs.items():
            sec = pair.secondary
            if sec is None or sec.lost or pair.primary.lost:
                self._branch("duplex:simplex")
                continue
            if pair.inflight:
                self._branch("duplex:busy")
                continue
            if pair.primary.duplex_state() == sec.duplex_state():
                self._branch("duplex:consistent")
            else:
                self._branch("duplex:divergence-violation")
                self._record(
                    "duplex-consistency",
                    f"{name}: primary and secondary instances disagree "
                    f"while quiesced",
                    key=name,
                )

    # -- end-of-run checks -------------------------------------------------
    def finalize(self, grace: float = 5.0) -> dict:
        """Final scan plus the end-state invariants; returns the report.

        ``grace`` is how long after the last fault/repair event retained
        locks are still excused (recovery may legitimately be running).
        """
        self._finalized = True
        self.scan()
        self._check_rebuild_termination()
        self._check_retained_cleared(grace)
        return self.report()

    def _check_rebuild_termination(self) -> None:
        """Every rebuild that started completed or was abandoned on record."""
        m = self.plex.metrics
        started = m.counter("cf.rebuilds_started").count
        finished = m.counter("cf.rebuilds").count
        abandoned = sum(
            1 for _t, label in self.plex.degraded_events
            if label.startswith("rebuild-abandoned")
        )
        if started:
            self._branch("rebuild:started")
        if abandoned:
            self._branch("rebuild:abandoned")
        if started != finished + abandoned:
            self._branch("rebuild:hung-violation")
            self._record(
                "rebuild-termination",
                f"{started} rebuilds started, {finished} finished, "
                f"{abandoned} abandoned — {started - finished - abandoned} "
                f"hung",
                key="rebuilds",
            )

    def _check_retained_cleared(self, grace: float) -> None:
        """Retained locks don't linger once recovery had time to run."""
        retained = self.plex.lock_space.retained
        if not retained:
            self._branch("retained:none")
            return
        live = [i for i in self.plex.instances.values()
                if i.node.alive and i.db.alive]
        if not live:
            self._branch("retained:no-live-recoverer")
            return  # nobody left to run peer recovery: excused
        last_event = max(
            (t for t, _label in self.plex.injector.log), default=0.0
        )
        if self.sim.now - last_event < grace:
            self._branch("retained:within-grace")
            return  # the last fault is recent: recovery may still be running
        owners = sorted({s for s, _m in retained.values()})
        failed_recoveries = {
            label.split(":")[1]
            for _t, label in self.plex.degraded_events
            if label.startswith("recovery-failed:")
        }
        owners = [s for s in owners if s not in failed_recoveries]
        if not owners:
            self._branch("retained:recovery-failed-excused")
            return  # recovery itself failed (recorded degraded outcome)
        self._branch("retained:stuck-violation")
        retained = {r: e for r, e in retained.items() if e[0] in set(owners)}
        self._record(
            "retained-locks",
            f"{len(retained)} retained locks of {owners} still present "
            f"{self.sim.now - last_event:.2f}s after the last fault event",
            key="stuck",
        )


def check_reconvergence(timeline: List[dict], offered: float,
                        last_repair: float, fraction: float = 0.5,
                        settle: float = 3.0,
                        degraded: bool = False) -> Optional[dict]:
    """Assert the availability promise: throughput returns after repair.

    ``timeline`` rows are ``{"t": window_end, "throughput": tps}``;
    windows ending later than ``last_repair + settle`` must average at
    least ``fraction * offered``.  Returns a violation dict (JSON-ready)
    or ``None``.  ``degraded=True`` excuses non-reconvergence (e.g. the
    run ended with no live CF — there is nothing to reconverge *to*).
    """
    if degraded:
        return None
    tail = [w["throughput"] for w in timeline if w["t"] > last_repair + settle]
    if not tail:
        return None  # the run ended before the settle window: inconclusive
    mean = sum(tail) / len(tail)
    if mean >= fraction * offered:
        return None
    return {
        "time": timeline[-1]["t"],
        "name": "reconvergence",
        "detail": (
            f"post-repair throughput {mean:.1f} tps < "
            f"{fraction:.0%} of offered {offered:.1f} tps "
            f"({len(tail)} windows after t={last_repair + settle:.2f})"
        ),
    }
