"""Run-level results: what every experiment reports.

A :class:`RunResult` is the normalized output of one measured simulation
window — throughput, response-time distribution, utilizations, CF and
lock statistics — so benchmark tables print uniformly across experiments.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["RunResult", "scalability_table"]


@dataclass
class RunResult:
    """Measurements from one simulation window."""

    label: str
    duration: float
    completed: int
    throughput: float  # transactions per simulated second
    response_mean: float
    response_p50: float
    response_p90: float
    response_p95: float
    response_p99: float
    cpu_utilization: Dict[str, float] = field(default_factory=dict)
    cf_utilization: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)
    #: failure/repair event timeline from the sysplex's injector, as
    #: ``[time, label]`` rows (empty for undisturbed runs)
    events: List[list] = field(default_factory=list)
    #: simulator events processed during the measured window (a machine
    #: cost, not a model output — excluded from serialization and from
    #: equality, see :meth:`to_dict`)
    sim_events: int = field(default=0, compare=False)

    @property
    def events_per_committed_txn(self) -> float:
        """Kernel events processed per committed transaction.

        The macro-benchmark efficiency metric: wall time divides into
        events/txn (how much machinery one transaction costs) times
        seconds/event (kernel speed).  Fast-path work lowers the former
        without touching model results."""
        if self.completed <= 0:
            return 0.0
        return self.sim_events / self.completed

    @property
    def mean_utilization(self) -> float:
        if not self.cpu_utilization:
            return 0.0
        return float(np.mean(list(self.cpu_utilization.values())))

    @property
    def utilization_spread(self) -> float:
        """max - min system utilization: the balancing quality metric."""
        if not self.cpu_utilization:
            return 0.0
        vals = list(self.cpu_utilization.values())
        return max(vals) - min(vals)

    def to_dict(self) -> dict:
        """A plain-data (JSON-serializable) view; see :meth:`from_dict`.

        ``events`` is omitted when empty so results from undisturbed
        runs serialize byte-identically to pre-chaos versions (cache
        entries and regression baselines stay valid).  ``sim_events`` is
        always omitted: it measures the simulator, not the modeled
        sysplex, and keeping it out of payloads means kernel work that
        changes the event count cannot churn golden results.
        """
        d = asdict(self)
        if not self.events:
            del d["events"]
        del d["sim_events"]
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output, losslessly."""
        return cls(**data)

    def row(self) -> str:
        return (
            f"{self.label:<28s} {self.throughput:>9.1f} tps   "
            f"rt mean {1e3 * self.response_mean:7.2f} ms   "
            f"p95 {1e3 * self.response_p95:7.2f} ms   "
            f"util {100 * self.mean_utilization:5.1f}%"
        )


def scalability_table(results: List[RunResult], base_throughput: float,
                      capacity_of=None) -> List[dict]:
    """Turn raw sweep results into Figure-3-style rows.

    ``base_throughput`` is the 1-engine reference; ``capacity_of`` maps a
    result to its physical engine count (defaults to parsing the label).
    Effective capacity = throughput / base_throughput.
    """
    rows = []
    for r in results:
        physical = capacity_of(r) if capacity_of else r.extras.get("physical", 0)
        effective = r.throughput / base_throughput if base_throughput else math.nan
        rows.append(
            {
                "label": r.label,
                "physical": physical,
                "effective": effective,
                "efficiency": effective / physical if physical else math.nan,
                "throughput": r.throughput,
            }
        )
    return rows
