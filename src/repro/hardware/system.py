"""A system node: one MVS image on one (possibly multiprocessor) machine.

Bundles the hardware a single sysplex member owns — CPU complex, TOD
clock, coupling links to each CF — plus the liveness state that the
failure-injection and recovery machinery manipulates.  Software components
(XCF member, subsystems) attach themselves via ``on_failure`` /
``on_restart`` hooks so a single ``fail()`` call propagates exactly like a
machine check taking down the whole image.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import SysplexConfig
from ..simkernel import Simulator
from .cpu import CpuComplex, SystemDown
from .links import LinkSet
from .timer import TodClock

__all__ = ["SystemNode", "SystemDown"]


class SystemNode:
    """Hardware identity of one sysplex member."""

    def __init__(self, sim: Simulator, config: SysplexConfig, index: int,
                 tod: Optional[TodClock] = None):
        self.sim = sim
        self.config = config
        self.index = index
        self.name = f"SYS{index:02d}"
        self.cpu = CpuComplex(sim, config.cpu, name=f"{self.name}.cpu")
        self.tod = tod
        #: LinkSets keyed by CF name, filled in by the sysplex builder.
        self.cf_links: Dict[str, LinkSet] = {}
        self.alive = True
        self.fenced = False
        self._failure_hooks: List[Callable[["SystemNode"], None]] = []
        self._restart_hooks: List[Callable[["SystemNode"], None]] = []
        self.failed_at: Optional[float] = None
        self.restarted_at: Optional[float] = None

    # -- lifecycle hooks ------------------------------------------------------
    def on_failure(self, hook: Callable[["SystemNode"], None]) -> None:
        self._failure_hooks.append(hook)

    def on_restart(self, hook: Callable[["SystemNode"], None]) -> None:
        self._restart_hooks.append(hook)

    def fail(self) -> None:
        """The image dies: CPU stops, links drop, hooks fire (in order)."""
        if not self.alive:
            return
        self.alive = False
        self.cpu.offline = True
        self.cpu.purge_queued()
        self.failed_at = self.sim.now
        for hook in list(self._failure_hooks):
            hook(self)

    def fence(self) -> None:
        """SFM isolation: I/O and coupling access forcibly cut off so the
        rest of the sysplex can treat the system as fail-stopped."""
        self.fenced = True

    def restart(self) -> None:
        """Bring the image back (planned re-IPL or post-repair)."""
        if self.alive:
            return
        self.alive = True
        self.cpu.offline = False
        self.fenced = False
        self.restarted_at = self.sim.now
        for hook in list(self._restart_hooks):
            hook(self)

    def check_alive(self) -> None:
        """Raise if this system has failed (used by mainline paths)."""
        if not self.alive:
            raise SystemDown(self.name)

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.alive else ("fenced" if self.fenced else "down")
        return f"<SystemNode {self.name} {state}>"

