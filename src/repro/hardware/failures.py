"""Failure injection: scripted outages for availability experiments.

Reproduces the paper's §2.5 scenarios: unplanned system loss (hardware or
software), planned removal for maintenance ("rolled through the parallel
sysplex one system at a time"), CF loss, link loss, and DASD path loss.

Every scheduled action is logged as ``(time, label)``; the labels name
the affected component (``crash:SYS02``, ``link-fail:SYS00-CF01.1``) so
experiments can report event timelines alongside their measurements.
:class:`~repro.chaos.ChaosEngine` drives this same injector with sampled
(rather than scripted) fault times.
"""

from __future__ import annotations

from typing import Callable, List

from ..simkernel import Simulator

__all__ = ["FailureInjector"]


class FailureInjector:
    """Schedules failure/repair actions at absolute simulated times."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.log: List[tuple] = []

    def at(self, when: float, label: str, action: Callable[[], None]) -> None:
        """Schedule an arbitrary labelled action (logged when it fires).

        The building block under every scenario method below; exposed so
        chaos schedules and tests can inject guarded or custom actions
        through the same logged path.
        """
        def fire():
            self.log.append((self.sim.now, label))
            action()

        self.sim.call_at(when, fire)

    # kept as an alias: older call sites used the private spelling
    _at = at

    def log_events(self) -> List[list]:
        """The fired-event log as JSON-ready ``[time, label]`` rows."""
        return [[t, label] for t, label in self.log]

    # -- systems ----------------------------------------------------------
    def crash_system(self, node, at: float) -> None:
        """Unplanned outage: the image dies without warning."""
        self.at(at, f"crash:{node.name}", node.fail)

    def restart_system(self, node, at: float) -> None:
        self.at(at, f"restart:{node.name}", node.restart)

    def planned_outage(self, node, at: float, duration: float) -> None:
        """Planned removal + later re-introduction (rolling maintenance)."""
        self.crash_system(node, at)
        self.restart_system(node, at + duration)

    def rolling_maintenance(self, nodes, start: float, outage: float,
                            gap: float) -> None:
        """Take each system down in turn, one at a time (paper §2.5)."""
        t = start
        for node in nodes:
            self.planned_outage(node, t, outage)
            t += outage + gap

    # -- coupling facility / links -------------------------------------------
    def fail_cf(self, cf, at: float) -> None:
        self.at(at, f"cf-fail:{cf.name}", cf.fail)

    def repair_cf(self, cf, at: float) -> None:
        """The failed CF returns to service (empty, available for rebuild)."""
        self.at(at, f"cf-repair:{cf.name}", cf.repair)

    def fail_link(self, linkset, at: float, index: int = 0) -> None:
        self.at(at, f"link-fail:{linkset.name}.{index}",
                lambda: linkset.fail_link(index))

    def repair_link(self, linkset, at: float, index: int = 0) -> None:
        self.at(at, f"link-repair:{linkset.name}.{index}",
                lambda: linkset.repair_link(index))

    # -- DASD ---------------------------------------------------------------
    def fail_dasd_path(self, device, at: float) -> None:
        self.at(at, f"path-fail:{device.name}", device.fail_path)

    def repair_dasd_path(self, device, at: float) -> None:
        self.at(at, f"path-repair:{device.name}", device.repair_path)
