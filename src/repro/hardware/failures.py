"""Failure injection: scripted outages for availability experiments.

Reproduces the paper's §2.5 scenarios: unplanned system loss (hardware or
software), planned removal for maintenance ("rolled through the parallel
sysplex one system at a time"), CF loss, link loss, and DASD path loss.
"""

from __future__ import annotations

from typing import Callable, List

from ..simkernel import Simulator

__all__ = ["FailureInjector"]


class FailureInjector:
    """Schedules failure/repair actions at absolute simulated times."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.log: List[tuple] = []

    def _at(self, when: float, label: str, action: Callable[[], None]) -> None:
        def fire():
            self.log.append((self.sim.now, label))
            action()

        self.sim.call_at(when, fire)

    # -- systems ----------------------------------------------------------
    def crash_system(self, node, at: float) -> None:
        """Unplanned outage: the image dies without warning."""
        self._at(at, f"crash:{node.name}", node.fail)

    def restart_system(self, node, at: float) -> None:
        self._at(at, f"restart:{node.name}", node.restart)

    def planned_outage(self, node, at: float, duration: float) -> None:
        """Planned removal + later re-introduction (rolling maintenance)."""
        self.crash_system(node, at)
        self.restart_system(node, at + duration)

    def rolling_maintenance(self, nodes, start: float, outage: float,
                            gap: float) -> None:
        """Take each system down in turn, one at a time (paper §2.5)."""
        t = start
        for node in nodes:
            self.planned_outage(node, t, outage)
            t += outage + gap

    # -- coupling facility / links -------------------------------------------
    def fail_cf(self, cf, at: float) -> None:
        self._at(at, f"cf-fail:{cf.name}", cf.fail)

    def fail_link(self, linkset, at: float, index: int = 0) -> None:
        self._at(at, "link-fail", lambda: linkset.fail_link(index))

    def repair_link(self, linkset, at: float, index: int = 0) -> None:
        self._at(at, "link-repair", lambda: linkset.repair_link(index))

    # -- DASD ---------------------------------------------------------------
    def fail_dasd_path(self, device, at: float) -> None:
        self._at(at, f"path-fail:{device.name}", device.fail_path)

    def repair_dasd_path(self, device, at: float) -> None:
        self._at(at, f"path-repair:{device.name}", device.repair_path)
