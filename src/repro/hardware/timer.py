"""Sysplex Timer and per-system time-of-day clocks.

The Sysplex Timer (9037) is the common time reference that lets every
system trust timestamps produced by every other system (paper §3.1).  Each
system's TOD clock drifts at a fixed ppm rate and is *steered* back toward
the reference at every synchronisation interval, so cross-system skew is
bounded — the invariant the database log-merge and lock-recovery protocols
rely on, and which the test suite checks.
"""

from __future__ import annotations

from typing import List

from ..simkernel import Simulator

__all__ = ["SysplexTimer", "TodClock"]


class TodClock:
    """A system's time-of-day clock: reference time + drift, steered."""

    def __init__(self, sim: Simulator, drift_ppm: float = 0.0):
        self.sim = sim
        self.drift_ppm = drift_ppm
        self._base_sim = sim.now  # sim time of last steering
        self._base_tod = sim.now  # TOD value at last steering
        self._last_read = self._base_tod

    def read(self) -> float:
        """Current TOD value.  Monotonic non-decreasing by construction."""
        elapsed = self.sim.now - self._base_sim
        tod = self._base_tod + elapsed * (1.0 + self.drift_ppm * 1e-6)
        # A steering correction may step the clock backward relative to the
        # drifted value; real TOD steering slews instead of stepping, which
        # we approximate by clamping to the last value read.
        if tod < self._last_read:
            tod = self._last_read
        self._last_read = tod
        return tod

    def steer(self, reference: float) -> None:
        """Synchronise to the Sysplex Timer's reference time."""
        self._base_sim = self.sim.now
        self._base_tod = reference

    def skew(self) -> float:
        """Signed offset of this clock from true simulated time."""
        elapsed = self.sim.now - self._base_sim
        tod = self._base_tod + elapsed * (1.0 + self.drift_ppm * 1e-6)
        return tod - self.sim.now


class SysplexTimer:
    """Central reference clock that periodically steers attached TODs."""

    def __init__(self, sim: Simulator, sync_interval: float = 1.0):
        self.sim = sim
        self.sync_interval = sync_interval
        self.clocks: List[TodClock] = []
        self._running = False

    def attach(self, drift_ppm: float = 0.0) -> TodClock:
        """Create and register a TOD clock for one system."""
        clock = TodClock(self.sim, drift_ppm)
        self.clocks.append(clock)
        if not self._running:
            self._running = True
            self.sim.process(self._sync_loop(), name="sysplex-timer")
        return clock

    def detach(self, clock: TodClock) -> None:
        if clock in self.clocks:
            self.clocks.remove(clock)

    def _sync_loop(self):
        while True:
            yield self.sim.timeout(self.sync_interval)
            reference = self.sim.now
            for clock in self.clocks:
                clock.steer(reference)

    def max_skew(self) -> float:
        """Largest pairwise clock disagreement right now."""
        if len(self.clocks) < 2:
            return 0.0
        offsets = [c.skew() for c in self.clocks]
        return max(offsets) - min(offsets)
