"""CPU complex model: an n-way tightly coupled multiprocessor.

Work is expressed as *service seconds on the reference engine*; consuming
it on an n-way complex inflates the time by the multiprocessor-effect
factor from :class:`repro.config.CpuConfig`.  That inflation — hardware
cache cross-invalidation, conceptual sequencing, software serialization —
is exactly the mechanism the paper blames for the TCMP roll-off in
Figure 3, so it is modeled explicitly rather than folded into throughput.
"""

from __future__ import annotations

from typing import Generator

from ..config import CpuConfig
from ..simkernel import Resource, Simulator, NORMAL

__all__ = ["CpuComplex", "SystemDown"]


class SystemDown(Exception):
    """Raised when work is attempted on a failed system."""


class CpuComplex:
    """``n_cpus`` engines with a shared dispatch queue."""

    def __init__(self, sim: Simulator, config: CpuConfig, name: str = "cpu"):
        self.sim = sim
        self.config = config
        self.name = name
        self.engines = Resource(sim, capacity=config.n_cpus)
        self._inflation = config.inflation()
        self._speed = config.speed
        self.busy_seconds = 0.0  # inflated engine-seconds actually burned
        self.offline = False
        #: event-collapse mode, set by the sysplex builder from the run's
        #: resolved collapse policy: an idle engine is claimed event-free
        #: (no grant event) on :meth:`consume`.  Timing and busy-area
        #: accounting are identical; only same-instant interleaving moves,
        #: the same statistically-neutral trade the CF command collapse
        #: makes (see repro.cf.commands.COLLAPSE).
        self.collapse = False
        #: >1.0 while the complex is degraded ("sick but not dead"): every
        #: CPU-second takes ``sick_factor`` times longer, but the system
        #: stays alive, heartbeats, and keeps accepting work — the hard
        #: SFM case where nothing ever trips the failure detector.
        self.sick_factor = 1.0

    # -- core consumption ---------------------------------------------------
    def consume(self, cpu_seconds: float, priority: int = NORMAL) -> Generator:
        """Process step: burn ``cpu_seconds`` of reference-engine work.

        Queues for an engine, holds it for the MP-inflated duration, and
        releases.  Yields from inside a process.
        """
        if cpu_seconds <= 0:
            return
        # collapse mode: claim an idle engine as a scalar hold — no grant
        # event, no Request allocation — halving the event count of the
        # uncontended dispatch; a busy engine queues exactly as before
        engines = self.engines
        req = None
        if not (self.collapse and engines.claim()):
            req = engines.request(priority)
        try:
            if req is not None:
                yield req
            if self.offline:
                raise SystemDown(self.name)
            burn = cpu_seconds * self._inflation / self._speed
            self.busy_seconds += burn
            yield self.sim.timeout(burn)
        finally:
            if req is None:
                engines.unclaim()
            else:
                req.cancel()

    def spin(self, duration: float, priority: int = NORMAL) -> Generator:
        """Hold an engine for a fixed *wall* duration (CPU-synchronous CF
        command round trip: the engine spins, no task switch)."""
        if duration <= 0:
            return
        req = self.engines.request(priority)
        try:
            yield req
            if self.offline:
                raise SystemDown(self.name)
            self.busy_seconds += duration
            yield self.sim.timeout(duration)
        finally:
            req.cancel()

    # -- degradation (sick but not dead) -------------------------------------
    def degrade(self, factor: float) -> None:
        """Slow every engine by ``factor`` without taking the system down.

        Models a sick-but-not-dead system: thermal throttling, a failing
        memory card driving recovery loops, a runaway monitor — the image
        is alive (heartbeats go out, work is accepted) but everything on
        it runs ``factor`` times slower.  Repeated calls replace, not
        stack, the factor; :meth:`recover` restores full speed.
        """
        if factor < 1.0:
            raise ValueError("degrade factor must be >= 1.0")
        self.sick_factor = factor
        self._speed = self.config.speed / factor

    def recover(self) -> None:
        """End a degradation: engines run at configured speed again."""
        self.sick_factor = 1.0
        self._speed = self.config.speed

    @property
    def degraded(self) -> bool:
        return self.sick_factor != 1.0

    def purge_queued(self) -> int:
        """Machine check: dispatchable work queued for an engine dies.

        Fails every waiting engine request with :class:`SystemDown` so
        blocked tasks learn of the failure instead of resuming whenever a
        (post-restart) engine frees up.  Returns the number purged.
        """
        purged = 0
        for _p, _s, req in list(self.engines._waiters):
            if req._key is not None and req._key is not False:
                req._key = None  # withdrawn from the queue
                if not req.triggered:
                    req.fail(SystemDown(self.name)).defused()
                purged += 1
        return purged

    # -- introspection --------------------------------------------------------
    @property
    def n_cpus(self) -> int:
        return self.config.n_cpus

    def utilization(self, since: float = 0.0) -> float:
        return self.engines.utilization(since)

    def reset_stats(self) -> None:
        self.engines.reset_stats()
        self.busy_seconds = 0.0

    def effective_engines(self) -> float:
        """Analytic effective capacity (reference engines) of this complex."""
        return self.config.effective_engines()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CpuComplex {self.name} {self.n_cpus}-way>"
