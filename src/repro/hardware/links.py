"""Coupling links and the inter-system message fabric.

Two transports exist in a Parallel Sysplex and the paper is emphatic about
the difference:

* **Coupling links** — specialized fiber-optic channels to the Coupling
  Facility with protocols "for highly-optimized transport of commands";
  microsecond round trips, usable CPU-synchronously.
* **XCF signalling paths** (CTC-like) — general inter-system messaging:
  hundreds of microseconds of latency plus real CPU (SRB dispatch,
  interrupt handling) at both ends.  This is the "message passing
  overhead" that data-sharing via the CF *avoids* and the shared-nothing
  baseline pays constantly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config import LinkConfig, XcfConfig
from ..simkernel import Resource, Simulator, Store

__all__ = [
    "CouplingLink",
    "InterfaceControlCheck",
    "LinkDownError",
    "LinkSet",
    "Message",
    "MessageFabric",
]


class LinkDownError(Exception):
    """Raised when a command is attempted over a failed link set."""


class InterfaceControlCheck(LinkDownError):
    """The link carrying an in-flight command failed mid-transfer.

    Models the channel subsystem's interface-control-check condition:
    the command's fate at the CF is unknown to the requester, which must
    redrive it (over a surviving link) or surface the error.
    """


class CouplingLink:
    """One physical coupling link: subchannels + latency + bandwidth."""

    def __init__(self, sim: Simulator, config: LinkConfig, name: str = "chp"):
        self.sim = sim
        self.config = config
        self.name = name
        self.subchannels = Resource(sim, capacity=config.subchannels)
        self.operational = True
        self.ops = 0

    def busy(self) -> int:
        return self.subchannels.in_use + self.subchannels.queue_length

    def try_reserve(self):
        """Event-free subchannel claim for the uncontended fast path.

        Returns a granted request (release via ``cancel()``) when the link
        is up and a subchannel is free with nobody queued, else ``None`` —
        the caller falls back to the general :meth:`occupy` round trip.
        """
        if not self.operational:
            return None
        return self.subchannels.try_acquire()

    def occupy(self, nbytes_out: int, nbytes_in: int, cf_service):
        """Process step: hold a subchannel for one command round trip.

        ``cf_service`` is a generator performing the CF-side execution
        (queueing for a CF processor); the subchannel stays held for the
        whole round trip, like a real subchannel active with a command.
        Returns the total round-trip duration.

        If the link fails while the command is in flight, the next
        resume point raises :class:`InterfaceControlCheck` — the command
        may or may not have executed at the CF, exactly the ambiguity a
        real interface control check presents.
        """
        if not self.operational:
            raise LinkDownError(self.name)
        start = self.sim.now
        req = self.subchannels.request()
        try:
            yield req
            if not self.operational:
                raise InterfaceControlCheck(self.name)
            transfer = self.config.transfer_time(nbytes_out + nbytes_in)
            yield self.sim.timeout(self.config.latency + transfer)
            if not self.operational:
                raise InterfaceControlCheck(self.name)
            yield from cf_service
            yield self.sim.timeout(self.config.latency)
            if not self.operational:
                raise InterfaceControlCheck(self.name)
            self.ops += 1
        finally:
            req.cancel()
        return self.sim.now - start


class LinkSet:
    """All links between one system and one CF, with path selection."""

    def __init__(self, sim: Simulator, config: LinkConfig, name: str = "links"):
        self.sim = sim
        self.config = config
        self.name = name
        self.links = [
            CouplingLink(sim, config, name=f"{name}.{i}")
            for i in range(config.links_per_system)
        ]

    def pick(self) -> CouplingLink:
        """Least-busy operational link (channel subsystem path selection).

        First link wins ties (as ``min`` over the list would pick);
        written as a plain scan so the per-command path allocates no
        candidate list or key closures.
        """
        best = None
        best_busy = 0
        for link in self.links:
            if not link.operational:
                continue
            sub = link.subchannels
            busy = len(sub.users) + sub._held + len(sub._waiters)
            if best is None or busy < best_busy:
                best = link
                best_busy = busy
        if best is None:
            raise LinkDownError("all coupling links down")
        return best

    def fail_link(self, index: int = 0) -> None:
        self.links[index].operational = False

    def repair_link(self, index: int = 0) -> None:
        self.links[index].operational = True

    @property
    def operational(self) -> bool:
        return any(link.operational for link in self.links)


class Message:
    """An XCF signal: sender name, type tag, and a payload dict."""

    __slots__ = ("sender", "kind", "payload", "sent_at")

    def __init__(self, sender: str, kind: str, payload: dict, sent_at: float):
        self.sender = sender
        self.kind = kind
        self.payload = payload
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Message {self.kind} from {self.sender}>"


class MessageFabric:
    """Point-to-point XCF signalling between named endpoints.

    An endpoint is registered with its CPU complex (both ends pay
    ``message_cpu``) and receives into a :class:`Store` inbox.  Sends to
    de-registered (failed/fenced) endpoints are silently dropped — exactly
    the fail-stop behaviour the paper's heartbeat/fencing design enforces.
    """

    def __init__(self, sim: Simulator, config: XcfConfig):
        self.sim = sim
        self.config = config
        self._endpoints: Dict[str, Tuple[object, Store]] = {}
        self.sent = 0
        self.delivered = 0

    def register(self, name: str, cpu) -> Store:
        inbox = Store(self.sim)
        self._endpoints[name] = (cpu, inbox)
        return inbox

    def deregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def is_registered(self, name: str) -> bool:
        return name in self._endpoints

    def inbox_of(self, name: str) -> Optional[Store]:
        entry = self._endpoints.get(name)
        return entry[1] if entry else None

    def send(self, sender: str, dest: str, kind: str, payload: dict) -> None:
        """Fire-and-forget signal; delivery after wire latency + CPU.

        Callable from plain code (no yield): spawns the delivery process.
        """
        self.sent += 1
        self.sim.process(self._deliver(sender, dest, kind, payload),
                         name=f"xcf-send-{kind}")

    def _deliver(self, sender: str, dest: str, kind: str, payload: dict):
        from .cpu import SystemDown

        try:
            src = self._endpoints.get(sender)
            if src is not None:
                yield from src[0].consume(self.config.message_cpu)
            yield self.sim.timeout(self.config.message_latency)
            entry = self._endpoints.get(dest)
            if entry is None:
                return  # destination fenced or never joined: drop
            cpu, inbox = entry
            yield from cpu.consume(self.config.message_cpu)
            inbox.put(Message(sender, kind, payload, self.sim.now))
            self.delivered += 1
        except SystemDown:
            return  # either end died mid-transfer: the signal is lost

    def broadcast(self, sender: str, kind: str, payload: dict,
                  exclude: Optional[set] = None) -> int:
        """Send to every registered endpoint except ``sender``/``exclude``."""
        exclude = exclude or set()
        n = 0
        for name in list(self._endpoints):
            if name == sender or name in exclude:
                continue
            self.send(sender, name, kind, payload)
            n += 1
        return n
