"""Hardware substrate: CPUs, coupling links, DASD, timer, failure injection."""

from .cpu import CpuComplex
from .dasd import DasdDevice, DasdFarm
from .failures import FailureInjector
from .links import (
    CouplingLink,
    InterfaceControlCheck,
    LinkDownError,
    LinkSet,
    Message,
    MessageFabric,
)
from .system import SystemDown, SystemNode
from .timer import SysplexTimer, TodClock

__all__ = [
    "CouplingLink",
    "CpuComplex",
    "DasdDevice",
    "DasdFarm",
    "FailureInjector",
    "InterfaceControlCheck",
    "LinkDownError",
    "LinkSet",
    "Message",
    "MessageFabric",
    "SysplexTimer",
    "SystemDown",
    "SystemNode",
    "TodClock",
]
