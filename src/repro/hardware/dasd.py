"""Shared DASD: ESCON-attached disk devices visible to every system.

"The disks are fully connected to all processors" (paper §3.1).  Each
device has multiple channel paths (a Resource); an I/O queues for a path,
holds it for a lognormal service time, and completes.  Path failure/repair
is modeled by capacity loss with automatic reconfiguration — surviving
paths keep the device reachable, reproducing the availability property the
paper cites from the ESCON architecture [4].

Devices also support hardware RESERVE/RELEASE, which the couple-data-set
model uses for cross-system serialization (with the paper's "special
time-out logic to handle faulty processors").
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import DasdConfig
from ..simkernel import Event, Resource, Simulator

__all__ = ["DasdDevice", "DasdFarm"]


class DasdDevice:
    """One shared disk device with multi-path access and RESERVE support."""

    def __init__(self, sim: Simulator, config: DasdConfig, rng: np.random.Generator,
                 name: str = "dasd"):
        self.sim = sim
        self.config = config
        self.rng = rng
        self.name = name
        self.paths = Resource(sim, capacity=config.paths)
        self._failed_paths = 0
        # lognormal parameterised so the mean equals config.service_mean
        sigma = config.service_sigma
        self._mu = float(np.log(config.service_mean) - 0.5 * sigma * sigma)
        self._sigma = sigma
        self.io_count = 0
        #: event-collapse mode (set by the sysplex builder): an idle path
        #: is claimed as a scalar hold, so an uncontended I/O costs one
        #: calendar event (the service timeout) instead of two.
        self.collapse = False
        # RESERVE state: holder token or None, plus FIFO of waiting events.
        self._reserve_holder: Optional[object] = None
        self._reserve_queue: List[tuple] = []

    # -- I/O ---------------------------------------------------------------
    def service_time(self) -> float:
        return float(self.rng.lognormal(self._mu, self._sigma))

    def io(self, pages: int = 1, priority: int = 1):
        """Process step: one I/O of ``pages`` pages (sequential chaining).

        ``priority`` orders the path queue (lower = first); background
        writers (castout, deferred write) run at lower priority so they
        never starve demand reads.
        """
        paths = self.paths
        req = None
        if not (self.collapse and paths.claim()):
            req = paths.request(priority)
        try:
            if req is not None:
                yield req
            t = self.service_time()
            if pages > 1:
                # chained pages ride the same positioning: transfer-only adds
                t += (pages - 1) * self.config.page_size / 17e6  # ESCON 17MB/s
            self.io_count += 1
            yield self.sim.timeout(t)
        finally:
            if req is None:
                paths.unclaim()
            else:
                req.cancel()

    # -- path availability ------------------------------------------------------
    def fail_path(self) -> None:
        """Take one channel path out of service (dynamic reconfiguration)."""
        if self._failed_paths < self.config.paths - 1:
            self._failed_paths += 1
            self.paths.capacity -= 1

    def repair_path(self) -> None:
        if self._failed_paths > 0:
            self._failed_paths -= 1
            self.paths.capacity += 1
            self.paths._dispatch()

    @property
    def available_paths(self) -> int:
        return self.config.paths - self._failed_paths

    # -- RESERVE / RELEASE --------------------------------------------------------
    def reserve(self, holder: object) -> Event:
        """Acquire the device-level hardware reserve (FIFO)."""
        ev = Event(self.sim)
        if self._reserve_holder is None:
            self._reserve_holder = holder
            ev.succeed(holder)
        else:
            self._reserve_queue.append((holder, ev))
        return ev

    def release(self, holder: object) -> None:
        if self._reserve_holder is not holder:
            return
        if self._reserve_queue:
            nxt, ev = self._reserve_queue.pop(0)
            self._reserve_holder = nxt
            ev.succeed(nxt)
        else:
            self._reserve_holder = None

    def break_reserve(self, holder: object) -> None:
        """Forcibly clear a reserve held by a failed system (timeout logic)."""
        if self._reserve_holder is holder:
            self.release(holder)

    @property
    def reserved_by(self) -> Optional[object]:
        return self._reserve_holder


class DasdFarm:
    """A set of devices with pages striped across them."""

    def __init__(self, sim: Simulator, config: DasdConfig, rng: np.random.Generator,
                 n_devices: int = 16):
        if n_devices < 1:
            raise ValueError("need at least one device")
        self.sim = sim
        self.config = config
        self.devices = [
            DasdDevice(sim, config, rng, name=f"dasd{i}") for i in range(n_devices)
        ]

    def device_for(self, page: int) -> DasdDevice:
        return self.devices[page % len(self.devices)]

    def read_page(self, page: int):
        """Process step: read one page from its device."""
        yield from self.device_for(page).io(pages=1)

    def write_page(self, page: int, priority: int = 1):
        """Process step: write one page to its device."""
        yield from self.device_for(page).io(pages=1, priority=priority)

    @property
    def total_ios(self) -> int:
        return sum(d.io_count for d in self.devices)
